//! # ibp-workloads — synthetic HPC application traces
//!
//! The paper evaluates on execution traces of five production HPC codes
//! (GROMACS, ALYA, WRF, NAS BT, NAS MG) captured on MareNostrum nodes.
//! Those traces are proprietary, so this crate generates synthetic traces
//! that reproduce each application's *communication structure*: the MPI
//! call mix, the gram/gap geometry the prediction algorithm feeds on
//! (Table I idle-interval distributions), the pattern (in)stability that
//! sets the hit rates of Table III, and strong-scaling behaviour across
//! the paper's process counts.
//!
//! Each generator is deterministic given a seed, SPMD-consistent across
//! ranks (collective schedules are shared), and produces traces that
//! [`ibp_trace::Trace::validate`] accepts — in particular, every
//! non-blocking request is completed and all point-to-point operations
//! pair up across ranks, which the replay engine in `ibp-network` relies
//! on.
//!
//! ```
//! use ibp_workloads::{AppKind, Workload};
//!
//! let alya = AppKind::Alya.workload();
//! let trace = alya.generate(8, 42);
//! assert_eq!(trace.nprocs, 8);
//! assert!(trace.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alya;
pub mod common;
pub mod gromacs;
pub mod nas_bt;
pub mod nas_mg;
pub mod spec;
pub mod wrf;

pub use alya::Alya;
pub use common::{GapModel, Scaling};
pub use gromacs::Gromacs;
pub use nas_bt::NasBt;
pub use nas_mg::NasMg;
pub use spec::{AppKind, Workload};
pub use wrf::Wrf;
