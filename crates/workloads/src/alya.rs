//! ALYA — computational multiphysics (the paper's running example).
//!
//! The paper's Fig. 2 shows ALYA's per-iteration stream: three
//! `MPI_Sendrecv` calls close together (halo exchange of the assembled
//! matrix), then two `MPI_Allreduce` calls each preceded by a long
//! compute gap (solver dot products). ALYA is the *least* power-saving
//! application of the five (Fig. 7–9: ≈14% at 8 ranks down to ≈2% at 128)
//! because it is communication-heavy: halo messages are large and the
//! solver gaps sit close to the grouping threshold, so the displacement
//! margin and `T_react` eat most of each exploitable window.
//!
//! Structure per iteration and rank:
//!
//! ```text
//! [assembly gap]  Sendrecv × k(n)      (one gram; k grows with scale)
//! [solver gap]    Allreduce            (gram)
//! [solver gap]    Allreduce            (gram)
//! ```
//!
//! Every `extra_gram_period` iterations a convergence-check `MPI_Bcast`
//! gram appears, breaking the pattern once (the mechanism re-arms on the
//! next clean iteration) — this pins the ≈93% hit rate of Table III.

use crate::common::{halo_bytes, intra_gram_gap, rank_imbalance, GapModel, Scaling};
use crate::spec::Workload;
use ibp_simcore::DetRng;
use ibp_trace::{MpiOp, Trace, TraceBuilder};

/// ALYA generator parameters (defaults calibrated against the paper).
#[derive(Debug, Clone)]
pub struct Alya {
    /// Number of solver iterations to generate.
    pub iterations: u32,
    /// Matrix-assembly compute gap (precedes the halo gram).
    pub assembly_gap: GapModel,
    /// Solver compute gap (precedes each Allreduce).
    pub solver_gap: GapModel,
    /// Total halo volume per rank at 8 processes, in bytes (surface-law
    /// scaled, split across the halo messages).
    pub halo_volume_at8: f64,
    /// Halo message count at 8 processes and its growth exponent in
    /// `(n/8)^beta` (domain fragmentation adds neighbours at scale).
    pub halo_count_at8: f64,
    /// Growth exponent for the halo message count.
    pub halo_count_beta: f64,
    /// Per-rank contribution to the per-iteration `MPI_Allgather`
    /// (ring algorithm, O(n) cost: boundary-condition aggregation that
    /// becomes ALYA's communication floor under strong scaling).
    pub gather_bytes: u64,
    /// Period (in iterations) of the extra convergence-check gram.
    pub extra_gram_period: u32,
    /// Strong (paper) or weak scaling of the per-rank problem.
    pub scaling: Scaling,
    /// Persistent per-rank compute imbalance spread.
    pub imbalance: f64,
}

impl Default for Alya {
    fn default() -> Self {
        Alya {
            iterations: 150,
            assembly_gap: GapModel {
                base_us: 1600.0,
                ref_n: 8,
                alpha: 0.80,
                sigma: 0.004,
            },
            solver_gap: GapModel {
                base_us: 600.0,
                ref_n: 8,
                alpha: 1.0,
                sigma: 0.004,
            },
            halo_volume_at8: 32.0e6,
            halo_count_at8: 3.0,
            halo_count_beta: 0.8,
            gather_bytes: 64_000,
            extra_gram_period: 40,
            scaling: Scaling::Strong,
            imbalance: 0.01,
        }
    }
}

impl Workload for Alya {
    fn name(&self) -> &'static str {
        "alya"
    }

    fn valid_nprocs(&self, n: u32) -> bool {
        n >= 2
    }

    fn paper_procs(&self) -> &'static [u32] {
        &[8, 16, 32, 64, 128]
    }

    fn generate(&self, nprocs: u32, seed: u64) -> Trace {
        assert!(self.valid_nprocs(nprocs), "alya needs >= 2 ranks");
        let root = DetRng::seed_from_u64(seed);
        let mut imb_rng = root.split(0);
        let factors = rank_imbalance(nprocs, self.imbalance, &mut imb_rng);

        // Per-rank problem size: the real process count under strong
        // scaling, the reference count under weak scaling.
        let gn = self.scaling.effective_n(nprocs, 8);
        let halo_count = ((self.halo_count_at8
            * (f64::from(gn) / 8.0).powf(self.halo_count_beta))
        .round() as u32)
            .max(1);
        let total_halo = halo_bytes(self.halo_volume_at8, 8, gn);
        let msg_bytes = (total_halo / u64::from(halo_count)).max(64);

        let mut b = TraceBuilder::new("alya", nprocs);
        for r in 0..nprocs {
            let mut rng = root.split(1 + u64::from(r));
            let f = factors[r as usize];
            for it in 0..self.iterations {
                // Assembly phase, then the halo gram.
                b.compute(r, self.assembly_gap.draw(gn, f, &mut rng));
                for j in 0..halo_count {
                    if j > 0 {
                        b.compute(r, intra_gram_gap(&mut rng));
                    }
                    // Halo partner j: exchange with ranks at hop distance
                    // (j/2)+1 in alternating directions — symmetric across
                    // ranks, so sends and receives match during replay.
                    let hop = (j / 2 + 1) % nprocs.max(1);
                    let hop = hop.max(1);
                    let (fwd, bwd) = (
                        (r + hop) % nprocs,
                        (r + nprocs - hop) % nprocs,
                    );
                    let (to, from) = if j % 2 == 0 { (fwd, bwd) } else { (bwd, fwd) };
                    b.op(
                        r,
                        MpiOp::Sendrecv {
                            to,
                            send_bytes: msg_bytes,
                            from,
                            recv_bytes: msg_bytes,
                        },
                    );
                }
                // Two solver dot products.
                for _ in 0..2 {
                    b.compute(r, self.solver_gap.draw(gn, f, &mut rng));
                    b.op(r, MpiOp::Allreduce { bytes: 8 });
                }
                // Boundary aggregation (O(n) ring allgather).
                b.compute(r, intra_gram_gap(&mut rng));
                b.op(r, MpiOp::Allgather { bytes: self.gather_bytes });
                // Occasional convergence-check gram breaks the pattern.
                if self.extra_gram_period > 0 && (it + 1) % self.extra_gram_period == 0 {
                    b.compute(r, self.solver_gap.draw(gn, f, &mut rng));
                    b.op(r, MpiOp::Bcast { root: 0, bytes: 256 });
                }
            }
            // Finalisation compute.
            b.compute(r, self.assembly_gap.draw(gn, f, &mut rng));
        }
        let trace = b.build();
        debug_assert!(trace.validate().is_ok());
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_trace::{IdleDistribution, MpiCall};

    #[test]
    fn generates_valid_traces_at_paper_scales() {
        let alya = Alya {
            iterations: 20,
            ..Alya::default()
        };
        for &n in alya.paper_procs() {
            let t = alya.generate(n, 7);
            assert_eq!(t.nprocs, n);
            t.validate().unwrap();
            assert!(t.total_calls() > 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let alya = Alya {
            iterations: 10,
            ..Alya::default()
        };
        assert_eq!(alya.generate(8, 1), alya.generate(8, 1));
        assert_ne!(alya.generate(8, 1), alya.generate(8, 2));
    }

    #[test]
    fn stream_matches_fig2_shape_at_small_scale() {
        // At 8 ranks each iteration opens with the paper's Fig. 2 motif:
        // three Sendrecvs close together, then two gap-separated
        // Allreduces (followed by the boundary Allgather).
        let alya = Alya {
            iterations: 5,
            extra_gram_period: 0,
            ..Alya::default()
        };
        let t = alya.generate(8, 3);
        let calls: Vec<MpiCall> = t.ranks[0].call_stream().map(|(c, _)| c).collect();
        let per_iter = calls.len() / 5;
        assert_eq!(per_iter, 6);
        for it in 0..5 {
            let s = it * per_iter;
            assert_eq!(calls[s], MpiCall::Sendrecv);
            assert_eq!(calls[s + 1], MpiCall::Sendrecv);
            assert_eq!(calls[s + 2], MpiCall::Sendrecv);
            assert_eq!(calls[s + 3], MpiCall::Allreduce);
            assert_eq!(calls[s + 4], MpiCall::Allreduce);
            assert_eq!(calls[s + 5], MpiCall::Allgather);
        }
    }

    #[test]
    fn long_intervals_dominate_idle_time_at_8() {
        // Table I, ALYA rows: the > 200 µs bucket holds ~99% of idle time
        // at 8 ranks.
        let alya = Alya {
            iterations: 50,
            ..Alya::default()
        };
        let t = alya.generate(8, 11);
        let d = IdleDistribution::from_trace(&t);
        assert!(
            d.long.time_pct > 95.0,
            "long-bucket time share {}",
            d.long.time_pct
        );
    }

    #[test]
    fn gaps_shrink_and_calls_grow_with_scale() {
        let alya = Alya {
            iterations: 20,
            ..Alya::default()
        };
        let t8 = alya.generate(8, 5);
        let t128 = alya.generate(128, 5);
        // Strong scaling: per-rank calls grow (more halo neighbours).
        assert!(
            t128.ranks[0].call_count() > t8.ranks[0].call_count(),
            "halo fragmentation should add calls at scale"
        );
        // Idle per rank shrinks.
        let idle8 = t8.ranks[0].total_compute();
        let idle128 = t128.ranks[0].total_compute();
        assert!(idle128 < idle8);
    }

    #[test]
    fn weak_scaling_preserves_per_rank_gaps() {
        use crate::common::Scaling;
        let strong = Alya {
            iterations: 10,
            ..Alya::default()
        };
        let weak = Alya {
            iterations: 10,
            scaling: Scaling::Weak,
            ..Alya::default()
        };
        let ts = strong.generate(64, 3);
        let tw = weak.generate(64, 3);
        // Weak scaling keeps per-rank compute near the 8-rank reference;
        // strong scaling shrinks it.
        let idle_s = ts.ranks[0].total_compute();
        let idle_w = tw.ranks[0].total_compute();
        assert!(
            idle_w.as_us_f64() > 2.0 * idle_s.as_us_f64(),
            "weak {idle_w} vs strong {idle_s}"
        );
        // Call structure (counts) matches the 8-rank reference in weak mode.
        let t8 = strong.generate(8, 3);
        assert_eq!(tw.ranks[0].call_count(), t8.ranks[0].call_count());
    }

    #[test]
    fn extra_gram_appears_at_period() {
        let alya = Alya {
            iterations: 80,
            extra_gram_period: 40,
            ..Alya::default()
        };
        let t = alya.generate(8, 9);
        let bcasts = t.ranks[0]
            .call_stream()
            .filter(|(c, _)| *c == MpiCall::Bcast)
            .count();
        assert_eq!(bcasts, 2);
    }
}
