//! NAS BT — block-tridiagonal ADI solver.
//!
//! BT runs on a square process grid (the paper uses 9/16/36/64/100
//! ranks). Each iteration computes the right-hand side (the dominant
//! compute gap), then performs line solves swept across the x, y and z
//! dimensions; each sweep exchanges faces with grid neighbours through
//! `MPI_Isend`/`MPI_Irecv`/`MPI_Waitall`. The structure never changes —
//! BT is the paper's most predictable application (hit rate 97–98%,
//! Table III) and its most power-saving one at small scale (≈51% at 9
//! ranks, Fig. 9a), collapsing at 100 ranks where the sweep gaps shrink
//! under the grouping threshold and communication dominates.

use crate::common::{Scaling, grid_neighbors, halo_bytes, intra_gram_gap, rank_imbalance, square_side, GapModel};
use crate::spec::Workload;
use ibp_simcore::DetRng;
use ibp_trace::{MpiOp, Trace, TraceBuilder};

/// NAS BT generator parameters.
#[derive(Debug, Clone)]
pub struct NasBt {
    /// Number of ADI iterations.
    pub iterations: u32,
    /// Right-hand-side computation gap (the dominant one).
    pub rhs_gap: GapModel,
    /// Per-sweep compute gap (between directional solves).
    pub sweep_gap: GapModel,
    /// Face-exchange volume per rank at 9 ranks, bytes.
    pub face_volume_at9: f64,
    /// Per-rank contribution to the per-iteration `MPI_Allgather` used
    /// for solution statistics (ring algorithm, O(n) cost — BT's
    /// strong-scaling communication floor).
    pub gather_bytes: u64,
    /// Strong (paper) or weak scaling of the per-rank problem.
    pub scaling: Scaling,
    /// Per-rank imbalance spread.
    pub imbalance: f64,
}

impl Default for NasBt {
    fn default() -> Self {
        NasBt {
            iterations: 300,
            rhs_gap: GapModel {
                base_us: 3200.0,
                ref_n: 9,
                alpha: 1.45,
                sigma: 0.003,
            },
            sweep_gap: GapModel {
                base_us: 1000.0,
                ref_n: 9,
                alpha: 1.55,
                sigma: 0.003,
            },
            face_volume_at9: 300e3,
            gather_bytes: 8_000,
            scaling: Scaling::Strong,
            imbalance: 0.008,
        }
    }
}

impl NasBt {
    /// One directional sweep: forward and backward substitution, each
    /// exchanging one face with the two neighbours along `axis`.
    fn sweep(
        b: &mut TraceBuilder,
        r: u32,
        side: u32,
        axis: usize,
        msg_bytes: u64,
        rng: &mut DetRng,
    ) {
        let nbrs = grid_neighbors(r, side);
        // axis 0 → east/west, axis 1 → north/south, axis 2 reuses
        // east/west (the third dimension is not decomposed in the 2-D
        // grid; BT's multipartitioning still exchanges along it).
        let (a, bk) = match axis {
            0 | 2 => (nbrs[0], nbrs[1]),
            _ => (nbrs[2], nbrs[3]),
        };
        for &(to, from) in &[(a, bk), (bk, a)] {
            let r1 = b.irecv(r, from, msg_bytes);
            b.compute(r, intra_gram_gap(rng));
            let r2 = b.isend(r, to, msg_bytes);
            b.compute(r, intra_gram_gap(rng));
            b.op(r, MpiOp::Waitall { reqs: vec![r1, r2] });
            b.compute(r, intra_gram_gap(rng));
        }
    }
}

impl Workload for NasBt {
    fn name(&self) -> &'static str {
        "nas-bt"
    }

    fn valid_nprocs(&self, n: u32) -> bool {
        n >= 4 && square_side(n).is_some()
    }

    fn paper_procs(&self) -> &'static [u32] {
        &[9, 16, 36, 64, 100]
    }

    fn generate(&self, nprocs: u32, seed: u64) -> Trace {
        let side = square_side(nprocs)
            .unwrap_or_else(|| panic!("NAS BT needs a square process count, got {nprocs}"));
        assert!(nprocs >= 4, "NAS BT needs >= 4 ranks");
        let root = DetRng::seed_from_u64(seed);
        let mut imb_rng = root.split(0);
        let factors = rank_imbalance(nprocs, self.imbalance, &mut imb_rng);
        let gn = self.scaling.effective_n(nprocs, 9);
        let msg_bytes = halo_bytes(self.face_volume_at9, 9, gn).max(64);

        let mut b = TraceBuilder::new("nas-bt", nprocs);
        for r in 0..nprocs {
            let mut rng = root.split(1 + u64::from(r));
            let f = factors[r as usize];
            for _ in 0..self.iterations {
                // RHS computation, then the three directional sweeps.
                b.compute(r, self.rhs_gap.draw(gn, f, &mut rng));
                for axis in 0..3 {
                    if axis > 0 {
                        b.compute(r, self.sweep_gap.draw(gn, f, &mut rng));
                    }
                    Self::sweep(&mut b, r, side, axis, msg_bytes, &mut rng);
                }
                // Solution update residual norm (every iteration in BT).
                b.compute(r, self.sweep_gap.draw(gn, f, &mut rng));
                b.op(r, MpiOp::Allreduce { bytes: 40 });
                b.compute(r, intra_gram_gap(&mut rng));
                b.op(r, MpiOp::Allgather { bytes: self.gather_bytes });
            }
            b.compute(r, self.rhs_gap.draw(gn, f, &mut rng));
        }
        let trace = b.build();
        debug_assert!(trace.validate().is_ok());
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_trace::IdleDistribution;

    fn small() -> NasBt {
        NasBt {
            iterations: 40,
            ..NasBt::default()
        }
    }

    #[test]
    fn requires_square_counts() {
        let bt = small();
        assert!(bt.valid_nprocs(9));
        assert!(bt.valid_nprocs(100));
        assert!(!bt.valid_nprocs(8));
        assert!(!bt.valid_nprocs(2));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn panics_on_non_square() {
        small().generate(8, 1);
    }

    #[test]
    fn valid_and_deterministic() {
        let bt = small();
        for &n in bt.paper_procs() {
            bt.generate(n, 3).validate().unwrap();
        }
        assert_eq!(bt.generate(16, 5), bt.generate(16, 5));
    }

    #[test]
    fn long_gaps_dominate_time_at_9() {
        let t = small().generate(9, 4);
        let d = IdleDistribution::from_trace(&t);
        // Table I BT@9: 99.99% of idle time in the long bucket.
        assert!(d.long.time_pct > 97.0, "{}", d.long.time_pct);
        // Tiny intervals dominate counts (78%).
        assert!(d.short.interval_pct > 60.0, "{}", d.short.interval_pct);
    }

    #[test]
    fn perfectly_periodic_structure() {
        // The call sequence of iteration k must equal iteration k+1's.
        let t = small().generate(9, 6);
        let calls: Vec<u16> = t.ranks[0].call_stream().map(|(c, _)| c.id()).collect();
        let per_iter = calls.len() / 40;
        for it in 1..39 {
            assert_eq!(
                &calls[it * per_iter..(it + 1) * per_iter],
                &calls[0..per_iter],
                "iteration {it} diverged"
            );
        }
    }

    #[test]
    fn gaps_collapse_at_scale() {
        let bt = small();
        let d9 = IdleDistribution::from_trace(&bt.generate(9, 7));
        let d100 = IdleDistribution::from_trace(&bt.generate(100, 7));
        // Strong scaling pushes intervals out of the long bucket.
        assert!(d100.long.interval_pct < d9.long.interval_pct);
    }
}
