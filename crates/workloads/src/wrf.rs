//! WRF — numerical weather prediction.
//!
//! WRF's communication signature in Table I is extreme: ~94% of all link
//! idle intervals are below 20 µs at every scale (dense bursts of halo
//! exchanges posted with `MPI_Isend`/`MPI_Irecv`/`MPI_Waitall`), yet those
//! tiny intervals account for ~1% of idle *time* — the physics
//! (microphysics, cumulus, boundary layer) gap between burst groups holds
//! nearly all of it. Burst lengths change whenever the dynamics load
//! balancing adjusts the decomposition (modelled as "stretches": every
//! ~dozen iterations the burst size changes, breaking the learned
//! pattern), and every ~10 steps a radiation substep adds an extra gram —
//! the paper's lowest hit rate (25–33%) with still-substantial power
//! savings at small scale (38%→4% across 8→128 ranks).

use crate::common::{Scaling, halo_bytes, rank_imbalance, GapModel};
use ibp_simcore::SimDuration;
use crate::spec::Workload;
use ibp_simcore::DetRng;
use ibp_trace::{MpiOp, Trace, TraceBuilder};

/// WRF generator parameters.
#[derive(Debug, Clone)]
pub struct Wrf {
    /// Number of model time steps.
    pub iterations: u32,
    /// Physics gap between the two burst groups (holds most idle time).
    pub physics_gap: GapModel,
    /// Dynamics gap before the first burst group.
    pub dynamics_gap: GapModel,
    /// Halo exchanges per burst (pairs of Isend/Irecv + one Waitall).
    pub burst_exchanges: u32,
    /// Mean length (iterations) of a load-balancing "stretch" during which
    /// the burst size is constant; at each stretch boundary it changes.
    pub stretch_len: u32,
    /// Radiation substep period (adds an extra gram), in steps.
    pub radiation_period: u32,
    /// Total halo volume per rank at 8 ranks, bytes.
    pub halo_volume_at8: f64,
    /// Per-rank contribution to the per-iteration lateral-boundary
    /// `MPI_Allgather` (ring algorithm: its cost grows linearly with the
    /// process count — the strong-scaling communication floor).
    pub gather_bytes: u64,
    /// Strong (paper) or weak scaling of the per-rank problem.
    pub scaling: Scaling,
    /// Per-rank imbalance spread.
    pub imbalance: f64,
}

impl Default for Wrf {
    fn default() -> Self {
        Wrf {
            iterations: 200,
            physics_gap: GapModel {
                base_us: 18_000.0,
                ref_n: 8,
                alpha: 1.25,
                sigma: 0.004,
            },
            dynamics_gap: GapModel {
                base_us: 3_500.0,
                ref_n: 8,
                alpha: 1.25,
                sigma: 0.004,
            },
            burst_exchanges: 10,
            stretch_len: 8,
            radiation_period: 10,
            halo_volume_at8: 2.5e6,
            gather_bytes: 192_000,
            scaling: Scaling::Strong,
            imbalance: 0.02,
        }
    }
}

impl Wrf {
    /// Tiny gap between non-blocking posts: the posting loop is fast
    /// (sub-2 µs), which keeps the tiny-interval *time* share around 1%
    /// as in Table I even though the tiny-interval *count* dominates.
    fn post_gap(rng: &mut DetRng) -> SimDuration {
        SimDuration::from_us_f64(rng.uniform_range(0.3, 1.8))
    }

    /// Emit one burst of `exchanges` non-blocking halo exchanges followed
    /// by a `Waitall`, with tiny intra-gram gaps.
    fn burst(
        &self,
        b: &mut TraceBuilder,
        r: u32,
        nprocs: u32,
        exchanges: u32,
        msg_bytes: u64,
        rng: &mut DetRng,
    ) {
        let mut reqs = Vec::with_capacity(2 * exchanges as usize);
        for j in 0..exchanges {
            if j > 0 {
                b.compute(r, Self::post_gap(rng));
            }
            let hop = (j / 2 + 1).min(nprocs - 1).max(1);
            let (fwd, bwd) = ((r + hop) % nprocs, (r + nprocs - hop) % nprocs);
            let (to, from) = if j % 2 == 0 { (fwd, bwd) } else { (bwd, fwd) };
            reqs.push(b.irecv(r, from, msg_bytes));
            b.compute(r, Self::post_gap(rng));
            reqs.push(b.isend(r, to, msg_bytes));
        }
        b.compute(r, Self::post_gap(rng));
        b.op(r, MpiOp::Waitall { reqs });
    }
}

impl Workload for Wrf {
    fn name(&self) -> &'static str {
        "wrf"
    }

    fn valid_nprocs(&self, n: u32) -> bool {
        n >= 2
    }

    fn paper_procs(&self) -> &'static [u32] {
        &[8, 16, 32, 64, 128]
    }

    fn generate(&self, nprocs: u32, seed: u64) -> Trace {
        assert!(self.valid_nprocs(nprocs), "wrf needs >= 2 ranks");
        let root = DetRng::seed_from_u64(seed);
        let mut imb_rng = root.split(0);
        let factors = rank_imbalance(nprocs, self.imbalance, &mut imb_rng);

        // SPMD-shared schedule: burst sizes per stretch and radiation steps.
        let mut sched = root.split(usize::MAX as u64);
        let mut burst_sizes = Vec::with_capacity(self.iterations as usize);
        {
            let mut current = self.burst_exchanges;
            let mut left = self.stretch_len;
            for _ in 0..self.iterations {
                if left == 0 {
                    // Load balancing changed the decomposition: new size.
                    let delta = sched.index(5) as i64 - 2; // −2..=+2
                    current = (i64::from(self.burst_exchanges) + delta).max(2) as u32;
                    left = self.stretch_len.max(2) - 1 + sched.index(4) as u32;
                } else {
                    left -= 1;
                }
                burst_sizes.push(current);
            }
        }

        let gn = self.scaling.effective_n(nprocs, 8);
        let total_halo = halo_bytes(self.halo_volume_at8, 8, gn);

        let mut b = TraceBuilder::new("wrf", nprocs);
        for r in 0..nprocs {
            let mut rng = root.split(1 + u64::from(r));
            let f = factors[r as usize];
            for (it, &exchanges) in burst_sizes.iter().enumerate().take(self.iterations as usize) {
                let msg_bytes = (total_halo / u64::from(2 * exchanges)).max(64);
                // Dynamics, then the first burst group.
                b.compute(r, self.dynamics_gap.draw(gn, f, &mut rng));
                self.burst(&mut b, r, nprocs, exchanges, msg_bytes, &mut rng);
                // Physics (the big gap), then the second burst group.
                b.compute(r, self.physics_gap.draw(gn, f, &mut rng));
                self.burst(&mut b, r, nprocs, exchanges, msg_bytes, &mut rng);
                // Lateral-boundary aggregation: an O(n) collective that
                // becomes the communication floor under strong scaling.
                b.compute(r, Self::post_gap(&mut rng));
                b.op(r, MpiOp::Allgather { bytes: self.gather_bytes });
                // Radiation substep every few iterations: extra gram.
                if self.radiation_period > 0
                    && (it + 1) % self.radiation_period as usize == 0
                {
                    b.compute(r, self.dynamics_gap.draw(gn, f, &mut rng));
                    b.op(r, MpiOp::Allreduce { bytes: 64 });
                }
            }
            b.compute(r, self.physics_gap.draw(gn, f, &mut rng));
        }
        let trace = b.build();
        debug_assert!(trace.validate().is_ok());
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_trace::IdleDistribution;

    fn small() -> Wrf {
        Wrf {
            iterations: 60,
            ..Wrf::default()
        }
    }

    #[test]
    fn valid_and_deterministic() {
        let w = small();
        for &n in w.paper_procs() {
            w.generate(n, 3).validate().unwrap();
        }
        assert_eq!(w.generate(32, 9), w.generate(32, 9));
    }

    #[test]
    fn tiny_intervals_dominate_counts_not_time() {
        // The WRF signature of Table I: ≥90% of intervals below 20 µs,
        // but ≥95% of idle time above 200 µs.
        let t = small().generate(8, 5);
        let d = IdleDistribution::from_trace(&t);
        assert!(d.short.interval_pct > 85.0, "{}", d.short.interval_pct);
        assert!(d.short.time_pct < 5.0, "{}", d.short.time_pct);
        assert!(d.long.time_pct > 90.0, "{}", d.long.time_pct);
    }

    #[test]
    fn burst_sizes_change_at_stretch_boundaries() {
        let w = Wrf {
            iterations: 100,
            stretch_len: 5,
            ..Wrf::default()
        };
        let t = w.generate(4, 6);
        // Count calls per iteration via Waitall markers: sizes must vary.
        let waitalls: Vec<usize> = t.ranks[0]
            .events
            .iter()
            .filter_map(|e| match &e.op {
                MpiOp::Waitall { reqs } => Some(reqs.len()),
                _ => None,
            })
            .collect();
        assert!(waitalls.len() >= 2 * 100);
        let distinct: std::collections::HashSet<usize> = waitalls.into_iter().collect();
        assert!(distinct.len() > 1, "burst sizes never changed");
    }

    #[test]
    fn spmd_consistent_across_ranks() {
        let t = small().generate(8, 7);
        let seq = |r: usize| {
            t.ranks[r]
                .call_stream()
                .map(|(c, _)| c)
                .collect::<Vec<_>>()
        };
        let s0 = seq(0);
        for r in 1..8 {
            assert_eq!(seq(r), s0, "rank {r} diverged");
        }
    }

    #[test]
    fn requests_always_completed() {
        // The builder's request discipline (Isend/Irecv → Waitall) must be
        // airtight or validate() would reject the trace.
        let t = small().generate(16, 8);
        t.validate().unwrap();
    }
}
