//! Component-level switch power model.
//!
//! The paper cites Wang, Peh & Malik's router power characterisation
//! ([19] in the paper) and two anchor facts: links take ~64% of an IB
//! switch's power (IBM 12X switch, [4]) and a Mellanox SX6036 under WRPS
//! on all ports draws 43% of nominal ([11]). This module turns those into
//! an explicit component breakdown so whole-switch (not just per-port)
//! power can be reported, and so the §VI deep-sleep extension has a
//! physical basis (buffers + crossbar are what deep sleep turns off).
//!
//! Default breakdown of a nominal switch:
//!
//! | component | share | scaled off by |
//! |---|---|---|
//! | link PHYs (per port)     | 64% | WRPS (per-port, to 43% of the PHY) |
//! | input buffers (per port) | 18% | deep sleep |
//! | crossbar                 | 12% | deep sleep |
//! | arbitration/control      |  6% | never (keeps the switch reachable) |
//!
//! Per-port figures divide the per-port shares by the port count.

use crate::results::SimResult;
use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Power breakdown of one switch, in watts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchPowerModel {
    /// Number of ports.
    pub ports: u32,
    /// Nominal whole-switch power, W.
    pub nominal_w: f64,
    /// Fraction of nominal going to link PHYs (all ports together).
    pub link_share: f64,
    /// Fraction going to input buffers (all ports together).
    pub buffer_share: f64,
    /// Fraction going to the crossbar.
    pub crossbar_share: f64,
    /// Fraction going to arbitration/control (never powered down).
    pub control_share: f64,
    /// Per-port link draw in WRPS 1X mode, relative to the port's full
    /// link draw.
    pub wrps_fraction: f64,
    /// Per-port link draw in rate-reduced mode (ladder middle rung),
    /// relative to the port's full link draw.
    #[serde(default = "default_rate_fraction")]
    pub rate_fraction: f64,
}

fn default_rate_fraction() -> f64 {
    crate::config::RATE_POWER_FRACTION
}

impl Default for SwitchPowerModel {
    /// A 36-port QDR edge switch (SX6036-class): ~130 W nominal with the
    /// 64% link share of the paper's [4].
    fn default() -> Self {
        SwitchPowerModel {
            ports: 36,
            nominal_w: 130.0,
            link_share: 0.64,
            buffer_share: 0.18,
            crossbar_share: 0.12,
            control_share: 0.06,
            wrps_fraction: 0.43,
            rate_fraction: default_rate_fraction(),
        }
    }
}

/// Whole-switch power summary over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchPowerReport {
    /// Mean whole-switch power with management active, W.
    pub managed_w: f64,
    /// Nominal (always-on) power, W.
    pub nominal_w: f64,
    /// Whole-switch saving, %.
    pub switch_saving_pct: f64,
    /// Saving counting only the managed (host-facing) ports, % — the
    /// paper's Figs. 7–9 metric.
    pub port_saving_pct: f64,
    /// Energy consumed over the run, J.
    pub energy_j: f64,
    /// Energy an always-on switch would have consumed, J.
    pub nominal_energy_j: f64,
}

impl SwitchPowerModel {
    /// Validate the share decomposition. Returns a message naming the
    /// offending field (the `PowerConfig::validate` convention) rather
    /// than panicking, so hostile or fat-fingered model files surface as
    /// CLI errors instead of aborts. Float range checks double as NaN
    /// rejection.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.link_share + self.buffer_share + self.crossbar_share + self.control_share;
        if (sum - 1.0).abs() >= 1e-9 || sum.is_nan() {
            return Err(format!("component shares must sum to 1, got {sum}"));
        }
        let shares = [
            ("link_share", self.link_share),
            ("buffer_share", self.buffer_share),
            ("crossbar_share", self.crossbar_share),
            ("control_share", self.control_share),
        ];
        for (name, s) in shares {
            if !(0.0..=1.0).contains(&s) {
                return Err(format!("{name} must be in [0, 1], got {s}"));
            }
        }
        if self.ports == 0 {
            return Err("switch needs at least one port".to_string());
        }
        if self.nominal_w <= 0.0 || !self.nominal_w.is_finite() {
            return Err(format!(
                "nominal_w must be positive and finite, got {}",
                self.nominal_w
            ));
        }
        if !(0.0..=1.0).contains(&self.wrps_fraction) {
            return Err(format!(
                "wrps_fraction must be in [0, 1], got {}",
                self.wrps_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.rate_fraction) {
            return Err(format!(
                "rate_fraction must be in [0, 1], got {}",
                self.rate_fraction
            ));
        }
        Ok(())
    }

    /// Full-power draw of one port's link PHY, W.
    pub fn link_w_per_port(&self) -> f64 {
        self.nominal_w * self.link_share / f64::from(self.ports)
    }

    /// Mean whole-switch power given per-port time shares.
    ///
    /// * `managed` — number of ports under management (the rest are
    ///   assumed always-on, e.g. uplinks);
    /// * `low_frac` / `deep_frac` — mean fraction of the run each managed
    ///   port spent in WRPS / deep sleep.
    ///
    /// Deep sleep removes the sleeping ports' share of buffers, and —
    /// when *all* managed ports are deep-sleeping — the crossbar
    /// proportionally; control power never goes away.
    pub fn mean_power_w(&self, managed: u32, low_frac: f64, deep_frac: f64) -> f64 {
        self.mean_power_ladder_w(managed, low_frac, 0.0, deep_frac)
    }

    /// [`SwitchPowerModel::mean_power_w`] with all three ladder depths:
    /// `rate_frac` is the mean fraction each managed port spent
    /// rate-reduced. Rate reduction scales only the PHYs (every lane
    /// stays up, slower); buffers and crossbar behave as in WRPS.
    ///
    /// # Panics
    /// Panics if the model itself is invalid (callers building models
    /// from external input must [`SwitchPowerModel::validate`] first) or
    /// if `managed` exceeds the port count.
    pub fn mean_power_ladder_w(
        &self,
        managed: u32,
        low_frac: f64,
        rate_frac: f64,
        deep_frac: f64,
    ) -> f64 {
        self.validate().expect("switch power model invalid");
        assert!(managed <= self.ports, "more managed ports than ports");
        let managed_f = f64::from(managed);
        let ports_f = f64::from(self.ports);
        let link_w = self.nominal_w * self.link_share;
        let buffer_w = self.nominal_w * self.buffer_share;
        let crossbar_w = self.nominal_w * self.crossbar_share;
        let control_w = self.nominal_w * self.control_share;

        // Link PHYs: managed ports reduce to wrps_fraction during WRPS,
        // to rate_fraction while rate-reduced, and to ~0 during deep
        // sleep (one lane's PLL stays up; fold it into control);
        // unmanaged ports stay at full draw.
        let per_port_link = link_w / ports_f;
        let managed_link = managed_f
            * per_port_link
            * (1.0 - low_frac - rate_frac - deep_frac
                + low_frac * self.wrps_fraction
                + rate_frac * self.rate_fraction);
        let unmanaged_link = (ports_f - managed_f) * per_port_link;

        // Buffers: per-port, off during deep sleep only.
        let per_port_buffer = buffer_w / ports_f;
        let managed_buffer = managed_f * per_port_buffer * (1.0 - deep_frac);
        let unmanaged_buffer = (ports_f - managed_f) * per_port_buffer;

        // Crossbar: shared; scales with the fraction of ports awake.
        let awake_share = 1.0 - managed_f / ports_f * deep_frac;
        let crossbar = crossbar_w * awake_share;

        managed_link + unmanaged_link + managed_buffer + unmanaged_buffer + crossbar + control_w
    }

    /// Build a whole-switch report from a replay result, treating the
    /// result's ranks as this switch's managed host ports.
    ///
    /// # Panics
    /// Panics if the result has more ranks than the switch has ports.
    pub fn report(&self, result: &SimResult, duration: SimDuration) -> SwitchPowerReport {
        let managed = result.nprocs() as u32;
        let low = result.mean_low_fraction();
        let rate = result.mean_rate_fraction();
        let deep = result.mean_deep_fraction();
        let managed_w = self.mean_power_ladder_w(managed, low, rate, deep);
        let secs = duration.as_secs_f64();
        SwitchPowerReport {
            managed_w,
            nominal_w: self.nominal_w,
            switch_saving_pct: 100.0 * (1.0 - managed_w / self.nominal_w),
            port_saving_pct: result.power_saving_pct(),
            energy_j: managed_w * secs,
            nominal_energy_j: self.nominal_w * secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shares_are_consistent() {
        let m = SwitchPowerModel::default();
        m.validate().unwrap();
        assert!((m.link_w_per_port() - 130.0 * 0.64 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn always_on_draws_nominal() {
        let m = SwitchPowerModel::default();
        let w = m.mean_power_w(36, 0.0, 0.0);
        assert!((w - 130.0).abs() < 1e-9);
        // No managed ports → also nominal.
        assert!((m.mean_power_w(0, 0.9, 0.0) - 130.0).abs() < 1e-9);
    }

    #[test]
    fn all_ports_wrps_matches_mellanox_anchor() {
        // All 36 ports in WRPS all the time: switch at
        // 0.64×0.43 + 0.36 = 63.5% of nominal. (The paper's 43% figure is
        // the *port-level* low-power consumption; at the switch level the
        // non-link components keep drawing.)
        let m = SwitchPowerModel::default();
        let w = m.mean_power_w(36, 1.0, 0.0);
        let expect = 130.0 * (0.64 * 0.43 + 0.36);
        assert!((w - expect).abs() < 1e-9, "{w} vs {expect}");
    }

    #[test]
    fn deep_sleep_cuts_buffers_and_crossbar() {
        let m = SwitchPowerModel::default();
        // All ports deep all the time: only control remains (+ nothing of
        // links/buffers/crossbar).
        let w = m.mean_power_w(36, 0.0, 1.0);
        let expect = 130.0 * 0.06;
        assert!((w - expect).abs() < 1e-9, "{w} vs {expect}");
        // Deep beats WRPS for the same time share.
        assert!(m.mean_power_w(36, 0.0, 0.5) < m.mean_power_w(36, 0.5, 0.0));
    }

    #[test]
    fn partial_management_interpolates() {
        let m = SwitchPowerModel::default();
        // 18 of 36 ports managed, half the time in WRPS.
        let w = m.mean_power_w(18, 0.5, 0.0);
        assert!(w < 130.0);
        assert!(w > m.mean_power_w(36, 0.5, 0.0));
    }

    #[test]
    fn report_combines_port_and_switch_views() {
        use crate::fabric::FabricStats;
        use ibp_simcore::SimTime;
        let m = SwitchPowerModel::default();
        let n = 18usize;
        let result = SimResult {
            exec_time: SimDuration::from_secs(10),
            rank_finish: vec![SimTime::from_secs(10); n],
            link_low: vec![SimDuration::from_secs(5); n], // half the run low
            link_rate: vec![SimDuration::ZERO; n],
            link_deep: vec![SimDuration::ZERO; n],
            link_transition: vec![SimDuration::ZERO; n],
            link_sleeps: vec![1; n],
            timelines: None,
            fabric: FabricStats::default(),
            low_power_fraction: 0.43,
            rate_power_fraction: 0.25,
            deep_power_fraction: 0.10,
            faults: crate::faults::FaultStats::default(),
        };
        let rep = m.report(&result, result.exec_time);
        // Port view: 0.57 × 0.5 = 28.5%.
        assert!((rep.port_saving_pct - 28.5).abs() < 1e-9);
        // Switch view is diluted by unmanaged ports and non-link power.
        assert!(rep.switch_saving_pct < rep.port_saving_pct);
        assert!(rep.switch_saving_pct > 0.0);
        assert!((rep.nominal_energy_j - 1300.0).abs() < 1e-9);
        assert!(rep.energy_j < rep.nominal_energy_j);
    }

    #[test]
    fn bad_shares_rejected_with_typed_error() {
        let m = SwitchPowerModel {
            link_share: 0.9,
            ..SwitchPowerModel::default()
        };
        let err = m.validate().unwrap_err();
        assert!(err.contains("sum to 1"), "{err}");
        let m = SwitchPowerModel {
            ports: 0,
            ..SwitchPowerModel::default()
        };
        assert!(m.validate().unwrap_err().contains("port"));
        let m = SwitchPowerModel {
            nominal_w: f64::NAN,
            ..SwitchPowerModel::default()
        };
        assert!(m.validate().unwrap_err().contains("nominal_w"));
        let m = SwitchPowerModel {
            rate_fraction: 1.5,
            ..SwitchPowerModel::default()
        };
        assert!(m.validate().unwrap_err().contains("rate_fraction"));
    }

    #[test]
    fn rate_rung_sits_between_wrps_and_deep() {
        let m = SwitchPowerModel::default();
        let wrps = m.mean_power_ladder_w(36, 1.0, 0.0, 0.0);
        let rate = m.mean_power_ladder_w(36, 0.0, 1.0, 0.0);
        let deep = m.mean_power_ladder_w(36, 0.0, 0.0, 1.0);
        assert!(deep < rate && rate < wrps, "{deep} < {rate} < {wrps}");
        // All ports rate-reduced: PHYs at 25%, everything else nominal.
        let expect = 130.0 * (0.64 * 0.25 + 0.36);
        assert!((rate - expect).abs() < 1e-9, "{rate} vs {expect}");
        // Depth-unaware entry point is the rate_frac = 0 special case.
        assert_eq!(m.mean_power_w(36, 0.3, 0.2), m.mean_power_ladder_w(36, 0.3, 0.0, 0.2));
    }
}
