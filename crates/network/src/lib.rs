//! # ibp-network — InfiniBand fat-tree replay simulator
//!
//! The Venus–Dimemas substitute of the `ibpower` workspace: an
//! event-driven co-simulation that replays MPI traces (compute verbatim,
//! communication re-simulated) over a 2-level Extended Generalized Fat
//! Tree, XGFT(2;18,14;1,18), with 40 Gb/s links, random up/down routing
//! and per-channel contention (Table II of the paper). Collectives are
//! decomposed into point-to-point phases; non-blocking requests and
//! waits are honoured.
//!
//! When supplied with [`ibp_core::TraceAnnotations`] the replay also
//! applies the power-saving mechanism's effects: per-call overheads,
//! reactivation penalties, and the lane-off windows that drive per-link
//! WRPS power accounting. Its [`SimResult`] yields the two headline
//! metrics of the paper's Figs. 7–9: IB switch power savings and
//! execution-time increase.

#![warn(missing_docs)]
#![warn(clippy::perf)]
#![forbid(unsafe_code)]

pub mod collectives;
pub mod config;
pub mod fabric;
pub mod faults;
pub mod genlink;
pub mod power;
pub mod replay;
pub mod results;
pub mod switch_power;
pub mod topology;
pub mod xgft;

pub use collectives::{decompose, for_each_micro, MicroOp};
pub use config::{SimParams, DEEP_POWER_FRACTION, RATE_POWER_FRACTION};
pub use fabric::{Fabric, FabricStats};
pub use faults::{FaultConfig, FaultPlan, FaultStats, SendFault};
pub use genlink::{IbGeneration, LadderRung, SleepLadder};
pub use power::{LinkPower, LinkPowerTracker};
pub use replay::{replay, replay_with_scratch, ReplayError, ReplayOptions, ReplayScratch};
pub use results::SimResult;
pub use switch_power::{SwitchPowerModel, SwitchPowerReport};
pub use topology::{ChannelId, FatTree, Route};
pub use xgft::{Vertex, Xgft};
