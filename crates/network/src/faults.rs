//! Deterministic fault injection for the replay engine.
//!
//! The paper's mechanism assumes the HCA wake timer and the links behave
//! perfectly; real fabrics misbehave. This module injects three fault
//! classes — seeded, so every run is exactly reproducible — that the
//! replay threads through its timing and power accounting:
//!
//! * **Wake-timer misfires** — the programmed HCA timer fails to fire, so
//!   the lanes stay in low power until the next send/receive *demands*
//!   the network, at which point the rank pays the full reactivation
//!   time of the active sleep kind (a `T_react`-class stall) instead of
//!   the runtime's predicted penalty.
//! * **Transient link flaps** — a link drops for a short outage window
//!   just as a message is injected; the send is delayed by the outage.
//! * **Stuck-at-1X degradation** — a link that was asked to reactivate
//!   comes back with only one lane for a while, quartering bandwidth:
//!   every transfer in the degraded window pays 3 extra serialization
//!   times (4× the 4X wire time).
//!
//! Faults are drawn per *host link* (one per rank) from independent
//! [`DetRng`] sub-streams split off the experiment seed, so adding a
//! fault class or a rank never perturbs the draws of another link.

use crate::config::SimParams;
use ibp_core::SleepKind;
use ibp_simcore::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Fault-injection configuration (all probabilities are per-event).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the fault RNG streams (independent of routing).
    pub seed: u64,
    /// Probability, per sleep window, that the wake timer misfires and
    /// the lanes stay down until the next network demand.
    #[serde(default)]
    pub wake_misfire_prob: f64,
    /// Multiplier on `wake_misfire_prob` for rate-reduced windows (the
    /// retrain path exercises more logic than a lane wake; deeper
    /// states may misfire more often). The effective probability is
    /// capped at 1.
    #[serde(default = "default_misfire_mult")]
    pub rate_misfire_mult: f64,
    /// Multiplier on `wake_misfire_prob` for deep-sleep windows.
    #[serde(default = "default_misfire_mult")]
    pub deep_misfire_mult: f64,
    /// Probability, per send, of a transient link flap.
    #[serde(default)]
    pub flap_prob: f64,
    /// Shortest flap outage (uniform draw between min and max).
    #[serde(default)]
    pub flap_outage_min: SimDuration,
    /// Longest flap outage.
    #[serde(default)]
    pub flap_outage_max: SimDuration,
    /// Probability, per send on a healthy link, that the link enters a
    /// stuck-at-1X degraded window.
    #[serde(default)]
    pub degrade_prob: f64,
    /// Length of a stuck-at-1X window once entered.
    #[serde(default)]
    pub degraded_window: SimDuration,
}

fn default_misfire_mult() -> f64 {
    1.0
}

impl FaultConfig {
    /// A quiet plan: seeded but with every fault class at rate zero.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            wake_misfire_prob: 0.0,
            rate_misfire_mult: 1.0,
            deep_misfire_mult: 1.0,
            flap_prob: 0.0,
            flap_outage_min: SimDuration::from_us(50),
            flap_outage_max: SimDuration::from_us(500),
            degrade_prob: 0.0,
            degraded_window: SimDuration::from_ms(2),
        }
    }

    /// The reference fault mix scaled by a single `rate` knob (the CLI's
    /// `--fault-rate`): `rate = 1.0` gives a mildly unreliable fabric
    /// (1% misfires, 0.1% flaps, 0.05% degradations); `rate = 10.0` is
    /// the fault-storm regime of the robustness study.
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        FaultConfig {
            wake_misfire_prob: (0.01 * rate).min(1.0),
            flap_prob: (0.001 * rate).min(1.0),
            degrade_prob: (0.0005 * rate).min(1.0),
            ..FaultConfig::quiet(seed)
        }
    }

    /// True when every fault class has rate zero (no plan needed).
    pub fn is_quiet(&self) -> bool {
        self.wake_misfire_prob == 0.0 && self.flap_prob == 0.0 && self.degrade_prob == 0.0
    }

    /// Effective misfire probability of a sleep depth (capped at 1).
    #[must_use]
    pub fn misfire_prob_of(&self, kind: SleepKind) -> f64 {
        let mult = match kind {
            SleepKind::Wrps => 1.0,
            SleepKind::Rate => self.rate_misfire_mult,
            SleepKind::Deep => self.deep_misfire_mult,
        };
        (self.wake_misfire_prob * mult).min(1.0)
    }

    /// Check that probabilities are in `[0, 1]` and ranges are ordered.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("wake_misfire_prob", self.wake_misfire_prob),
            ("flap_prob", self.flap_prob),
            ("degrade_prob", self.degrade_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        let mults = [
            ("rate_misfire_mult", self.rate_misfire_mult),
            ("deep_misfire_mult", self.deep_misfire_mult),
        ];
        for (name, m) in mults {
            if !m.is_finite() || m < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {m}"));
            }
        }
        if self.flap_outage_min > self.flap_outage_max {
            return Err(format!(
                "flap_outage_min ({}) exceeds flap_outage_max ({})",
                self.flap_outage_min, self.flap_outage_max
            ));
        }
        Ok(())
    }
}

/// Fault outcome for one send.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendFault {
    /// A transient flap hit this send.
    pub flapped: bool,
    /// Outage delay before the injection can start (link flap).
    pub flap_delay: SimDuration,
    /// The link is in a stuck-at-1X window: serialization is 4×.
    pub degraded: bool,
}

/// Per-link mutable fault state.
#[derive(Debug, Clone)]
struct LinkFaultState {
    rng: DetRng,
    degraded_until: SimTime,
}

/// A scheduled, per-link fault drawing plan for one replay run.
///
/// Construct once per run via [`FaultPlan::new`]; the replay engine
/// consults it at every sleep-window resolution and every send.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    links: Vec<LinkFaultState>,
}

impl FaultPlan {
    /// Build the plan for `nprocs` host links.
    pub fn new(cfg: &FaultConfig, nprocs: u32) -> FaultPlan {
        let root = DetRng::seed_from_u64(cfg.seed);
        FaultPlan {
            cfg: cfg.clone(),
            links: (0..nprocs)
                .map(|r| LinkFaultState {
                    // Label sub-streams by link id; stable under changes
                    // elsewhere in the engine.
                    rng: root.split(0xFA01_0000 ^ u64::from(r)),
                    degraded_until: SimTime::ZERO,
                })
                .collect(),
        }
    }

    /// Does the wake timer of `link`'s current WRPS sleep window
    /// misfire? (Depth-unaware alias of [`FaultPlan::wake_misfires_at`].)
    pub fn wake_misfires(&mut self, link: usize) -> bool {
        self.wake_misfires_at(link, SleepKind::Wrps)
    }

    /// Does the wake timer of `link`'s current sleep window, at depth
    /// `kind`, misfire? One RNG draw per window regardless of depth, so
    /// the default multipliers (1.0) reproduce the depth-unaware draws
    /// bit for bit.
    pub fn wake_misfires_at(&mut self, link: usize, kind: SleepKind) -> bool {
        if self.cfg.wake_misfire_prob <= 0.0 {
            return false;
        }
        // Gate on the *base* probability so the stream advances once per
        // window whatever the depth multipliers are: changing a
        // multiplier never perturbs the draws of later windows.
        self.links[link].rng.chance(self.cfg.misfire_prob_of(kind))
    }

    /// Draw the fault outcome for a send leaving `link` at `now`.
    pub fn send_fault(&mut self, link: usize, now: SimTime) -> SendFault {
        self.link_run(link).send_fault(now)
    }

    /// Borrow `link`'s drawing state once for a *run* of consecutive
    /// sends on that link — the batch-oriented entry point the replay
    /// engine's send-run fast path uses, skipping the per-call link
    /// lookup. Draws come from the same per-link stream in the same
    /// order as repeated [`FaultPlan::send_fault`] calls, so results are
    /// bit-identical either way.
    pub fn link_run(&mut self, link: usize) -> LinkRun<'_> {
        LinkRun {
            cfg: &self.cfg,
            st: &mut self.links[link],
        }
    }

    /// Extra serialization charged to a degraded (1X) transfer: the wire
    /// time is 4× nominal, so 3 extra copies of the 4X serialization.
    pub fn degraded_extra(params: &SimParams, bytes: u64) -> SimDuration {
        let one = params.serialize(bytes);
        one + one + one
    }
}

/// One link's fault-drawing state, borrowed for a run of consecutive
/// sends (see [`FaultPlan::link_run`]).
#[derive(Debug)]
pub struct LinkRun<'a> {
    cfg: &'a FaultConfig,
    st: &'a mut LinkFaultState,
}

impl LinkRun<'_> {
    /// Draw the fault outcome for the next send of this run at `now`.
    pub fn send_fault(&mut self, now: SimTime) -> SendFault {
        let cfg = self.cfg;
        let st = &mut *self.st;
        let mut fault = SendFault::default();
        if cfg.flap_prob > 0.0 && st.rng.chance(cfg.flap_prob) {
            let lo = cfg.flap_outage_min.as_ns();
            let hi = cfg.flap_outage_max.as_ns();
            let ns = if hi > lo {
                lo + (st.rng.next_u64() % (hi - lo + 1))
            } else {
                lo
            };
            fault.flapped = true;
            fault.flap_delay = SimDuration::from_ns(ns);
        }
        if now < st.degraded_until {
            fault.degraded = true;
        } else if cfg.degrade_prob > 0.0 && st.rng.chance(cfg.degrade_prob) {
            st.degraded_until = now + cfg.degraded_window;
            fault.degraded = true;
        }
        fault
    }
}

/// Aggregate fault accounting for one replay run (all zeros when no
/// faults were injected).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Sleep windows whose wake timer misfired.
    pub wake_misfires: u64,
    /// Total reactivation stall charged by misfires.
    pub misfire_stall: SimDuration,
    /// Sends delayed by a transient link flap.
    pub link_flaps: u64,
    /// Total outage delay charged by flaps.
    pub flap_delay: SimDuration,
    /// Sends that ran over a stuck-at-1X link.
    pub degraded_sends: u64,
    /// Total extra serialization charged to degraded sends.
    pub degraded_extra: SimDuration,
}

impl FaultStats {
    /// Total number of fault events of any class.
    pub fn total_events(&self) -> u64 {
        self.wake_misfires + self.link_flaps + self.degraded_sends
    }

    /// Total extra time charged to ranks by faults (an upper bound on
    /// the exec-time impact; overlap can hide some of it).
    pub fn total_charged(&self) -> SimDuration {
        self.misfire_stall + self.flap_delay + self.degraded_extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_faults() {
        let cfg = FaultConfig::quiet(7);
        assert!(cfg.is_quiet());
        let mut plan = FaultPlan::new(&cfg, 4);
        for link in 0..4 {
            assert!(!plan.wake_misfires(link));
            let f = plan.send_fault(link, SimTime::from_us(10));
            assert!(f.flap_delay.is_zero() && !f.degraded);
        }
    }

    #[test]
    fn with_rate_scales_and_saturates() {
        let mild = FaultConfig::with_rate(1, 1.0);
        assert!((mild.wake_misfire_prob - 0.01).abs() < 1e-12);
        let storm = FaultConfig::with_rate(1, 10.0);
        assert!((storm.wake_misfire_prob - 0.10).abs() < 1e-12);
        let max = FaultConfig::with_rate(1, 1e6);
        assert_eq!(max.wake_misfire_prob, 1.0);
        assert_eq!(max.flap_prob, 1.0);
        assert!(max.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_probs_and_ranges() {
        let mut cfg = FaultConfig::quiet(0);
        cfg.flap_prob = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::quiet(0);
        cfg.wake_misfire_prob = -0.1;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::quiet(0);
        cfg.flap_outage_min = SimDuration::from_ms(10);
        cfg.flap_outage_max = SimDuration::from_us(1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn depth_multipliers_scale_misfire_probability() {
        let mut cfg = FaultConfig::quiet(0);
        cfg.wake_misfire_prob = 0.4;
        cfg.rate_misfire_mult = 1.5;
        cfg.deep_misfire_mult = 4.0;
        assert!((cfg.misfire_prob_of(SleepKind::Wrps) - 0.4).abs() < 1e-12);
        assert!((cfg.misfire_prob_of(SleepKind::Rate) - 0.6).abs() < 1e-12);
        // Capped at 1.
        assert_eq!(cfg.misfire_prob_of(SleepKind::Deep), 1.0);
        assert!(cfg.validate().is_ok());
        cfg.deep_misfire_mult = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn depth_multiplier_draws_stay_stream_aligned() {
        // A mult-0 depth still consumes one draw per window, so the
        // *other* windows of the run see identical randomness.
        let mut cfg = FaultConfig::quiet(21);
        cfg.wake_misfire_prob = 0.5;
        let mut base = FaultPlan::new(&cfg, 1);
        let mut zeroed_cfg = cfg.clone();
        zeroed_cfg.deep_misfire_mult = 0.0;
        let mut zeroed = FaultPlan::new(&zeroed_cfg, 1);
        for i in 0..100u64 {
            let kind = if i % 3 == 0 { SleepKind::Deep } else { SleepKind::Wrps };
            let a = base.wake_misfires_at(0, kind);
            let b = zeroed.wake_misfires_at(0, kind);
            if kind == SleepKind::Deep {
                assert!(!b);
            } else {
                assert_eq!(a, b, "window {i}");
            }
        }
    }

    #[test]
    fn default_multipliers_match_depth_unaware_draws() {
        let cfg = FaultConfig::with_rate(0xFEED, 40.0);
        let mut by_kind = FaultPlan::new(&cfg, 2);
        let mut plain = FaultPlan::new(&cfg, 2);
        for i in 0..200u64 {
            let link = (i % 2) as usize;
            let kind = SleepKind::ALL[(i % 3) as usize];
            assert_eq!(by_kind.wake_misfires_at(link, kind), plain.wake_misfires(link));
        }
    }

    #[test]
    fn deterministic_draws_per_seed() {
        let cfg = FaultConfig::with_rate(0xD1C0, 10.0);
        let draw = |cfg: &FaultConfig| {
            let mut plan = FaultPlan::new(cfg, 8);
            let mut log = Vec::new();
            for i in 0..200u64 {
                let link = (i % 8) as usize;
                let t = SimTime::from_us(i * 13);
                log.push((plan.wake_misfires(link), plan.send_fault(link, t).flap_delay));
            }
            log
        };
        assert_eq!(draw(&cfg), draw(&cfg));
        let other = FaultConfig::with_rate(0xD1C1, 10.0);
        assert_ne!(draw(&cfg), draw(&other));
    }

    #[test]
    fn link_run_draws_match_single_calls() {
        let cfg = FaultConfig::with_rate(0xBEEF, 25.0);
        let mut single = FaultPlan::new(&cfg, 3);
        let mut batched = FaultPlan::new(&cfg, 3);
        for round in 0..40u64 {
            for link in 0..3 {
                let t = |i: u64| SimTime::from_us(round * 100 + i * 7);
                let a: Vec<SendFault> = (0..5).map(|i| single.send_fault(link, t(i))).collect();
                let mut run = batched.link_run(link);
                let b: Vec<SendFault> = (0..5).map(|i| run.send_fault(t(i))).collect();
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.flapped, y.flapped);
                    assert_eq!(x.flap_delay, y.flap_delay);
                    assert_eq!(x.degraded, y.degraded);
                }
            }
        }
    }

    #[test]
    fn degraded_window_sticks_until_expiry() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.degrade_prob = 1.0;
        cfg.degraded_window = SimDuration::from_us(100);
        let mut plan = FaultPlan::new(&cfg, 1);
        assert!(plan.send_fault(0, SimTime::from_us(0)).degraded);
        // Inside the window: degraded without a fresh draw.
        assert!(plan.send_fault(0, SimTime::from_us(50)).degraded);
        // Past expiry a fresh draw happens (p = 1 → degraded again, and
        // the window is re-armed from the new now).
        assert!(plan.send_fault(0, SimTime::from_us(200)).degraded);
    }

    #[test]
    fn degraded_extra_is_three_serializations() {
        let p = SimParams::paper();
        let extra = FaultPlan::degraded_extra(&p, 1 << 20);
        let one = p.serialize(1 << 20);
        assert_eq!(extra, one + one + one);
    }

    #[test]
    fn flap_outage_within_bounds() {
        let mut cfg = FaultConfig::quiet(11);
        cfg.flap_prob = 1.0;
        let mut plan = FaultPlan::new(&cfg, 1);
        for i in 0..100u64 {
            let f = plan.send_fault(0, SimTime::from_us(i));
            assert!(f.flap_delay >= cfg.flap_outage_min);
            assert!(f.flap_delay <= cfg.flap_outage_max);
        }
    }
}
