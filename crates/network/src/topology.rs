//! The 2-level Extended Generalized Fat Tree, XGFT(2;18,14;1,18).
//!
//! 14 leaf switches each connect 18 nodes downward and all 18 top
//! switches upward; every node has one host link. All links are
//! full-duplex; each *direction* is a separate channel for contention
//! purposes.
//!
//! Channel layout (for `L = leaf_count`, `M = nodes_per_leaf`,
//! `T = top_count`, `N = L·M` node slots):
//!
//! | id range              | channel                          |
//! |-----------------------|----------------------------------|
//! | `0 .. N`              | node → leaf (host uplink)        |
//! | `N .. 2N`             | leaf → node (host downlink)      |
//! | `2N + (l·T+t)`        | leaf `l` → top `t`               |
//! | `2N + LT + (l·T+t)`   | top `t` → leaf `l`               |
//!
//! Routing is *random up/down* (Table II): traffic between leaves picks a
//! top switch uniformly at random per message.

use crate::config::SimParams;
use ibp_simcore::DetRng;
use ibp_trace::Rank;

/// A unidirectional channel index.
pub type ChannelId = u32;

/// The fat-tree topology with rank→node placement.
#[derive(Debug, Clone)]
pub struct FatTree {
    nodes_per_leaf: u32,
    leaf_count: u32,
    top_count: u32,
    nodes: u32,
}

/// A route: the ordered channels a message traverses, plus the number of
/// switch hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Channels in traversal order.
    pub channels: Vec<ChannelId>,
    /// Switches traversed (1 within a leaf, 2 across leaves... counted as
    /// store-and-forward hops for latency purposes).
    pub hops: u32,
}

/// [`Route`] in fixed storage: a 2-level tree never needs more than four
/// channels, so the hot path carries routes inline instead of allocating
/// a `Vec` per message (see [`FatTree::route_inline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineRoute {
    channels: [ChannelId; 4],
    len: u8,
    /// Switches traversed.
    pub hops: u32,
}

impl InlineRoute {
    /// Channels in traversal order.
    #[inline]
    #[must_use]
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels[..self.len as usize]
    }
}

impl FatTree {
    /// Build the tree described by `params`.
    ///
    /// # Panics
    /// Panics if `nprocs` exceeds the tree's node capacity.
    pub fn new(params: &SimParams, nprocs: u32) -> Self {
        assert!(
            nprocs <= params.node_capacity(),
            "{} ranks exceed the {}-node XGFT",
            nprocs,
            params.node_capacity()
        );
        FatTree {
            nodes_per_leaf: params.nodes_per_leaf,
            leaf_count: params.leaf_count,
            top_count: params.top_count,
            nodes: params.node_capacity(),
        }
    }

    /// Total number of unidirectional channels.
    pub fn channel_count(&self) -> u32 {
        2 * self.nodes + 2 * self.leaf_count * self.top_count
    }

    /// The node a rank is placed on (one process per node, packed).
    pub fn node_of(&self, rank: Rank) -> u32 {
        assert!(rank < self.nodes, "rank {rank} exceeds node capacity");
        rank
    }

    /// The leaf switch a node hangs off.
    pub fn leaf_of(&self, node: u32) -> u32 {
        node / self.nodes_per_leaf
    }

    /// Host uplink channel of a node (node → leaf).
    pub fn host_up(&self, node: u32) -> ChannelId {
        node
    }

    /// Host downlink channel of a node (leaf → node).
    pub fn host_down(&self, node: u32) -> ChannelId {
        self.nodes + node
    }

    /// Leaf→top channel.
    pub fn up_channel(&self, leaf: u32, top: u32) -> ChannelId {
        2 * self.nodes + leaf * self.top_count + top
    }

    /// Top→leaf channel.
    pub fn down_channel(&self, top: u32, leaf: u32) -> ChannelId {
        2 * self.nodes + self.leaf_count * self.top_count + leaf * self.top_count + top
    }

    /// Route a message from `src` to `dst` rank. Cross-leaf traffic
    /// ascends to a *random* top switch (random routing, Table II).
    ///
    /// # Panics
    /// Panics if `src == dst` (loopback traffic never enters the fabric).
    pub fn route(&self, src: Rank, dst: Rank, rng: &mut DetRng) -> Route {
        let inline = self.route_inline(src, dst, rng);
        Route {
            channels: inline.channels().to_vec(),
            hops: inline.hops,
        }
    }

    /// [`FatTree::route`] without the `Vec`: the fabric calls this once
    /// per message, so the channels come back in fixed inline storage.
    /// Draws from `rng` exactly like [`FatTree::route`] (same route, same
    /// stream position).
    ///
    /// # Panics
    /// Panics if `src == dst` (loopback traffic never enters the fabric).
    pub fn route_inline(&self, src: Rank, dst: Rank, rng: &mut DetRng) -> InlineRoute {
        assert_ne!(src, dst, "loopback route requested");
        let (sn, dn) = (self.node_of(src), self.node_of(dst));
        let (sl, dl) = (self.leaf_of(sn), self.leaf_of(dn));
        if sl == dl {
            InlineRoute {
                channels: [self.host_up(sn), self.host_down(dn), 0, 0],
                len: 2,
                hops: 1,
            }
        } else {
            let top = rng.index(self.top_count as usize) as u32;
            InlineRoute {
                channels: [
                    self.host_up(sn),
                    self.up_channel(sl, top),
                    self.down_channel(top, dl),
                    self.host_down(dn),
                ],
                len: 4,
                hops: 3,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: u32) -> FatTree {
        FatTree::new(&SimParams::paper(), n)
    }

    #[test]
    fn capacity_is_252() {
        let t = tree(252);
        assert_eq!(t.channel_count(), 2 * 252 + 2 * 14 * 18);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn rejects_oversubscription() {
        tree(253);
    }

    #[test]
    fn channel_ids_are_disjoint() {
        let t = tree(252);
        let mut seen = std::collections::HashSet::new();
        for n in 0..252 {
            assert!(seen.insert(t.host_up(n)));
        }
        for n in 0..252 {
            assert!(seen.insert(t.host_down(n)));
        }
        for l in 0..14 {
            for top in 0..18 {
                assert!(seen.insert(t.up_channel(l, top)));
                assert!(seen.insert(t.down_channel(top, l)));
            }
        }
        assert_eq!(seen.len() as u32, t.channel_count());
        assert!(seen.iter().all(|&c| c < t.channel_count()));
    }

    #[test]
    fn same_leaf_route_is_two_channels() {
        let t = tree(36);
        let mut rng = DetRng::seed_from_u64(1);
        // Ranks 0 and 5 share leaf 0.
        let r = t.route(0, 5, &mut rng);
        assert_eq!(r.channels.len(), 2);
        assert_eq!(r.hops, 1);
        assert_eq!(r.channels[0], t.host_up(0));
        assert_eq!(r.channels[1], t.host_down(5));
    }

    #[test]
    fn cross_leaf_route_is_four_channels() {
        let t = tree(128);
        let mut rng = DetRng::seed_from_u64(2);
        // Ranks 0 (leaf 0) and 20 (leaf 1).
        let r = t.route(0, 20, &mut rng);
        assert_eq!(r.channels.len(), 4);
        assert_eq!(r.hops, 3);
        assert_eq!(r.channels[0], t.host_up(0));
        assert_eq!(r.channels[3], t.host_down(20));
    }

    #[test]
    fn random_routing_spreads_over_tops() {
        let t = tree(128);
        let mut rng = DetRng::seed_from_u64(3);
        let mut tops = std::collections::HashSet::new();
        for _ in 0..200 {
            let r = t.route(0, 20, &mut rng);
            tops.insert(r.channels[1]);
        }
        assert!(tops.len() > 10, "only {} distinct up-channels used", tops.len());
    }

    #[test]
    fn inline_route_matches_vec_route() {
        // Same draw from the same stream position ⇒ identical channels
        // and hops, same- and cross-leaf.
        let t = tree(128);
        for (src, dst) in [(0u32, 5u32), (0, 20), (17, 3), (100, 101)] {
            let mut rng_a = DetRng::seed_from_u64(9);
            let mut rng_b = DetRng::seed_from_u64(9);
            for _ in 0..50 {
                let vec_route = t.route(src, dst, &mut rng_a);
                let inline = t.route_inline(src, dst, &mut rng_b);
                assert_eq!(vec_route.channels, inline.channels());
                assert_eq!(vec_route.hops, inline.hops);
            }
        }
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        let t = tree(8);
        let mut rng = DetRng::seed_from_u64(4);
        t.route(3, 3, &mut rng);
    }
}
