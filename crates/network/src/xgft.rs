//! Generalized Extended Generalized Fat Trees — XGFT(h; m₁…m_h; w₁…w_h).
//!
//! The paper's Table II names its topology as a member of the XGFT
//! family (Öhring et al.): a height-`h` tree where level-`i` switches
//! have `m_i` children and every level-(i−1) node has `w_i` parents.
//! [`crate::topology::FatTree`] hard-codes the paper's 2-level instance
//! for the replay fast path; this module implements the general family —
//! useful for exploring deeper fabrics (3-level trees are the common
//! datacenter case) with the same power-management machinery.
//!
//! Nodes sit at level 0. A level-`i` switch is addressed by the pair
//! *(group, index)*: which subtree of level-`i+1` it belongs to and its
//! position. Internally every vertex gets a dense id; unidirectional
//! channels are enumerated per edge (up and down separately), and routes
//! follow the standard nearest-common-ancestor up/down scheme with
//! random up-link choice.

use ibp_simcore::DetRng;
use serde::{Deserialize, Serialize};

/// A generalized fat tree description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xgft {
    /// Children per switch at each level, `m[0]` = nodes per leaf switch.
    pub m: Vec<u32>,
    /// Parents per vertex at each level, `w[0]` = parents per node.
    pub w: Vec<u32>,
}

/// A vertex in the tree: its level and dense index within the level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vertex {
    /// 0 = compute node, `h` = top switches.
    pub level: u32,
    /// Dense index within the level.
    pub index: u32,
}

impl Xgft {
    /// Create an XGFT(h; m…; w…).
    ///
    /// # Panics
    /// Panics if `m` and `w` differ in length, are empty, or contain
    /// zeros.
    pub fn new(m: Vec<u32>, w: Vec<u32>) -> Self {
        assert_eq!(m.len(), w.len(), "m and w must have equal height");
        assert!(!m.is_empty(), "height must be at least 1");
        assert!(m.iter().all(|&x| x > 0), "child counts must be positive");
        assert!(w.iter().all(|&x| x > 0), "parent counts must be positive");
        Xgft { m, w }
    }

    /// The paper's topology, XGFT(2; 18,14; 1,18).
    pub fn paper() -> Self {
        Xgft::new(vec![18, 14], vec![1, 18])
    }

    /// Tree height (number of switch levels).
    pub fn height(&self) -> u32 {
        self.m.len() as u32
    }

    /// Number of vertices at `level` (0 = nodes).
    ///
    /// Level `l` has `(∏_{i<l} w_i over upper levels) × (∏_{i≥l} m_i)`
    /// vertices by the standard XGFT construction:
    /// `count(l) = w_{l+1}·…·w_h × m_1·…·m_l` — with the convention that
    /// level 0 counts the compute nodes `m_1·…·m_h / (m_1·…·m_0)`.
    pub fn level_count(&self, level: u32) -> u32 {
        let h = self.m.len();
        let l = level as usize;
        assert!(l <= h, "level out of range");
        let mut count: u64 = 1;
        // m_1 … m_l contribute children multiplicity below the level;
        // actually vertices at level l are grouped by the m's ABOVE l and
        // replicated by the w's above l:
        //   count(l) = (∏_{i=l+1..h} m_i) × (∏_{i=1..l} w_i)… corrected:
        // standard result: count(l) = w_1·…·w_l × m_{l+1}·…·m_h.
        for i in 0..l {
            count *= u64::from(self.w[i]);
        }
        for i in l..h {
            count *= u64::from(self.m[i]);
        }
        count as u32
    }

    /// Number of compute nodes.
    pub fn node_count(&self) -> u32 {
        self.level_count(0)
    }

    /// Parents of a vertex at `level` (level < height): the `w[level]`
    /// switches one level up it connects to.
    ///
    /// Using the standard XGFT addressing: a level-`l` vertex with index
    /// `x` decomposes as `x = (chunk · m[l] + pos) · R + rep` where the
    /// replication factor `R = ∏_{i<l} w_i`. Its parents at level `l+1`
    /// are the `w[l]` vertices `(chunk · R·w[l]) + rep·w[l] + j`.
    pub fn parents(&self, v: Vertex) -> Vec<Vertex> {
        let l = v.level as usize;
        assert!(
            (v.level) < self.height(),
            "top-level switches have no parents"
        );
        assert!(v.index < self.level_count(v.level), "index out of range");
        let rep: u32 = self.w[..l].iter().product();
        let fam = v.index / rep; // which (chunk, pos) family
        let r = v.index % rep; // replica id within the family
        let chunk = fam / self.m[l];
        let parent_rep = rep * self.w[l];
        (0..self.w[l])
            .map(|j| Vertex {
                level: v.level + 1,
                index: chunk * parent_rep + r * self.w[l] + j,
            })
            .collect()
    }

    /// Children of a switch at `level ≥ 1`: the inverse of [`parents`].
    pub fn children(&self, v: Vertex) -> Vec<Vertex> {
        assert!(v.level >= 1, "nodes have no children");
        let below = v.level - 1;
        (0..self.level_count(below))
            .map(|index| Vertex {
                level: below,
                index,
            })
            .filter(|c| self.parents(*c).contains(&v))
            .collect()
    }

    /// Route from node `src` to node `dst` as a list of vertices
    /// (starting at `src`'s node, ending at `dst`'s node), using the
    /// nearest-common-ancestor up/down scheme with random parent choice
    /// on the way up.
    ///
    /// # Panics
    /// Panics on `src == dst` or out-of-range nodes.
    pub fn route(&self, src: u32, dst: u32, rng: &mut DetRng) -> Vec<Vertex> {
        assert_ne!(src, dst, "loopback");
        let mut up = Vertex {
            level: 0,
            index: src,
        };
        let mut path = vec![up];
        // Climb until dst is in the subtree: two vertices share an
        // ancestor at level l iff their indices agree on the "chunk"
        // coordinate at that level. We climb while the destination is
        // not reachable downward, i.e. while the subtrees differ.
        while !self.covers(up, dst) {
            let parents = self.parents(up);
            up = parents[rng.index(parents.len())];
            path.push(up);
        }
        // Deterministic descent to dst.
        let mut down = up;
        while down.level > 0 {
            let next = self
                .children(down)
                .into_iter()
                .find(|c| self.covers(*c, dst))
                .expect("descent must make progress");
            path.push(next);
            down = next;
        }
        debug_assert_eq!(path.last().unwrap().index, dst);
        path
    }

    /// Whether node `dst` lies in the subtree rooted at `v`.
    fn covers(&self, v: Vertex, dst: u32) -> bool {
        if v.level == 0 {
            return v.index == dst;
        }
        // Node dst's ancestor-chunk at level l: strip the m-products.
        let l = v.level as usize;
        let nodes_per_subtree: u32 = self.m[..l].iter().product();
        let chunk_of_dst = dst / nodes_per_subtree;
        // v's chunk coordinate at its level:
        let rep: u32 = self.w[..l].iter().product();
        let fam = v.index / rep;
        fam == chunk_of_dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_counts() {
        let t = Xgft::paper();
        assert_eq!(t.node_count(), 252);
        assert_eq!(t.level_count(1), 14); // leaf switches
        assert_eq!(t.level_count(2), 18); // top switches
    }

    #[test]
    fn three_level_counts() {
        // XGFT(3; 4,4,4; 1,2,2): 64 nodes; 16 leaves; 8×2=... level 2:
        // w1·w2 × m3 = 1·2 × 4 = 8; level 3: 1·2·2 = 4.
        let t = Xgft::new(vec![4, 4, 4], vec![1, 2, 2]);
        assert_eq!(t.node_count(), 64);
        assert_eq!(t.level_count(1), 16);
        assert_eq!(t.level_count(2), 8);
        assert_eq!(t.level_count(3), 4);
    }

    #[test]
    fn node_parent_is_its_leaf() {
        let t = Xgft::paper();
        // Node 0..17 hang off leaf 0, 18..35 off leaf 1 …
        for node in [0u32, 17, 18, 251] {
            let p = t.parents(Vertex {
                level: 0,
                index: node,
            });
            assert_eq!(p.len(), 1);
            assert_eq!(p[0].index, node / 18);
        }
    }

    #[test]
    fn leaf_parents_are_all_tops() {
        let t = Xgft::paper();
        let p = t.parents(Vertex { level: 1, index: 3 });
        assert_eq!(p.len(), 18);
        let idx: Vec<u32> = p.iter().map(|v| v.index).collect();
        assert_eq!(idx, (0..18).collect::<Vec<_>>());
    }

    #[test]
    fn children_invert_parents() {
        let t = Xgft::new(vec![3, 2, 2], vec![1, 2, 3]);
        for level in 1..=t.height() {
            for index in 0..t.level_count(level) {
                let v = Vertex { level, index };
                for c in t.children(v) {
                    assert!(
                        t.parents(c).contains(&v),
                        "child {c:?} does not list {v:?} as parent"
                    );
                }
            }
        }
    }

    #[test]
    fn routes_are_valid_walks() {
        let t = Xgft::paper();
        let mut rng = DetRng::seed_from_u64(5);
        for (src, dst) in [(0u32, 1u32), (0, 20), (17, 18), (0, 251), (100, 101)] {
            let path = t.route(src, dst, &mut rng);
            assert_eq!(path.first().unwrap().index, src);
            assert_eq!(path.last().unwrap().index, dst);
            assert_eq!(path.first().unwrap().level, 0);
            assert_eq!(path.last().unwrap().level, 0);
            // Consecutive vertices are adjacent (parent/child).
            for w in path.windows(2) {
                let (a, b) = (w[0], w[1]);
                let adjacent = if b.level == a.level + 1 {
                    t.parents(a).contains(&b)
                } else if a.level == b.level + 1 {
                    t.parents(b).contains(&a)
                } else {
                    false
                };
                assert!(adjacent, "non-adjacent hop {a:?} -> {b:?}");
            }
        }
    }

    #[test]
    fn same_leaf_routes_stay_low() {
        let t = Xgft::paper();
        let mut rng = DetRng::seed_from_u64(6);
        let path = t.route(0, 5, &mut rng);
        // node → leaf → node: 3 vertices, max level 1.
        assert_eq!(path.len(), 3);
        assert!(path.iter().all(|v| v.level <= 1));
    }

    #[test]
    fn cross_leaf_routes_reach_level_2() {
        let t = Xgft::paper();
        let mut rng = DetRng::seed_from_u64(7);
        let path = t.route(0, 20, &mut rng);
        assert_eq!(path.len(), 5);
        assert_eq!(path.iter().map(|v| v.level).max(), Some(2));
    }

    #[test]
    fn three_level_routing_works_at_all_distances() {
        let t = Xgft::new(vec![4, 4, 4], vec![1, 2, 2]);
        let mut rng = DetRng::seed_from_u64(8);
        // Same leaf, same middle subtree, cross-tree.
        for (src, dst, max_level) in [(0u32, 1u32, 1), (0, 5, 2), (0, 63, 3)] {
            let path = t.route(src, dst, &mut rng);
            assert_eq!(path.last().unwrap().index, dst);
            assert!(
                path.iter().map(|v| v.level).max().unwrap() <= max_level,
                "route {src}->{dst} climbed too high: {path:?}"
            );
        }
    }

    #[test]
    fn random_up_choice_spreads() {
        let t = Xgft::paper();
        let mut rng = DetRng::seed_from_u64(9);
        let mut tops = std::collections::HashSet::new();
        for _ in 0..300 {
            let path = t.route(0, 240, &mut rng);
            let top = path.iter().find(|v| v.level == 2).unwrap().index;
            tops.insert(top);
        }
        assert!(tops.len() > 12, "only {} tops used", tops.len());
    }

    #[test]
    #[should_panic(expected = "equal height")]
    fn mismatched_arity_rejected() {
        Xgft::new(vec![4, 4], vec![1]);
    }
}
