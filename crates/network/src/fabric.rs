//! Message transfer timing with per-channel contention.
//!
//! The fabric approximates Venus' detailed network simulation with a
//! wormhole-style occupancy model: a message's head waits for each channel
//! of its route to become free (accumulating one hop latency per switch),
//! the tail follows one serialization time behind, and every channel on
//! the route stays occupied until the tail has passed. This captures the
//! two effects the paper's results depend on — end-to-end transfer delay
//! and serialization of competing traffic on shared channels — without
//! simulating individual 2 KB segments (the segment size still sets the
//! cut-through granularity via the per-hop latency charge).

use crate::config::SimParams;
use crate::topology::FatTree;
use ibp_simcore::{DetRng, SimDuration, SimTime};
use ibp_trace::Rank;
use std::cell::Cell;

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages injected.
    pub messages: u64,
    /// Payload bytes injected.
    pub bytes: u64,
    /// Messages that had to wait for a busy channel.
    pub contended: u64,
}

/// The network fabric: topology + channel occupancy.
#[derive(Debug)]
pub struct Fabric {
    params: SimParams,
    topo: FatTree,
    /// Per-channel busy-until time.
    free: Vec<SimTime>,
    rng: DetRng,
    /// Per (src,dst) message sequence numbers for identity-stable
    /// routing, stored dense (`src * nprocs + dst`): replays touch most
    /// pairs anyway and the direct index beats a hash probe per message.
    pair_seq: Vec<u64>,
    nprocs: u32,
    stats: FabricStats,
    /// One-entry serialization-time memo `(bytes, serial)`: traces use a
    /// handful of message sizes in long runs of the same size, and
    /// `serialize` costs a float division per call (taken twice per
    /// message, in [`Fabric::transfer`] and [`Fabric::inject_done`]).
    serial_memo: Cell<(u64, SimDuration)>,
}

impl Fabric {
    /// Create a fabric for `nprocs` ranks.
    pub fn new(params: SimParams, nprocs: u32, seed: u64) -> Self {
        let topo = FatTree::new(&params, nprocs);
        let free = vec![SimTime::ZERO; topo.channel_count() as usize];
        Fabric {
            params,
            topo,
            free,
            rng: DetRng::seed_from_u64(seed).split(0xFAB),
            pair_seq: vec![0; (nprocs as usize) * (nprocs as usize)],
            nprocs,
            stats: FabricStats::default(),
            serial_memo: Cell::new((0, SimDuration::ZERO)),
        }
    }

    /// [`SimParams::serialize`] through the one-entry memo — exact same
    /// value, float division skipped on repeat sizes.
    #[inline]
    fn serial(&self, bytes: u64) -> SimDuration {
        let (memo_bytes, memo_serial) = self.serial_memo.get();
        if memo_bytes == bytes {
            return memo_serial;
        }
        let serial = self.params.serialize(bytes);
        self.serial_memo.set((bytes, serial));
        serial
    }

    /// Inject a message at `send_time`; returns its arrival time at the
    /// destination NIC. Channel occupancies are updated.
    ///
    /// Each channel on the route is busy for one serialization window as
    /// the message streams through (switch buffers are assumed ample, as
    /// in Dimemas, so downstream congestion does not back-pressure
    /// upstream channels). The route's top switch is chosen by hashing
    /// the message identity (src, dst, per-pair sequence number), so the
    /// same message takes the same path in every replay of the same
    /// trace — baseline and power-managed runs see identical routing.
    pub fn transfer(&mut self, send_time: SimTime, src: Rank, dst: Rank, bytes: u64) -> SimTime {
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        if src == dst {
            // Self-message: memcpy through the MPI library, no fabric.
            return send_time + self.params.mpi_latency;
        }
        let seq = {
            let c = &mut self.pair_seq[(src * self.nprocs + dst) as usize];
            *c += 1;
            *c
        };
        let mut msg_rng = self
            .rng
            .split((u64::from(src) << 40) | (u64::from(dst) << 16) | (seq & 0xFFFF));
        let route = self.topo.route_inline(src, dst, &mut msg_rng);
        let serial = self.serial(bytes);
        let mut head = send_time + self.params.mpi_latency;
        let mut contended = false;
        for &c in route.channels() {
            let free = self.free[c as usize];
            if free > head {
                contended = true;
                head = free;
            }
            head += self.params.hop_latency;
            // The channel streams the body behind the head.
            self.free[c as usize] = head + serial;
        }
        if contended {
            self.stats.contended += 1;
        }
        head + serial
    }

    /// Sender-side completion of an injection started at `send_time`
    /// (the NIC has accepted all bytes; eager protocol).
    #[inline]
    #[must_use]
    pub fn inject_done(&self, send_time: SimTime, bytes: u64) -> SimTime {
        send_time + self.params.mpi_latency + self.serial(bytes)
    }

    /// Statistics snapshot.
    #[inline]
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The simulation parameters in use.
    #[inline]
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_simcore::SimDuration;

    fn fabric(n: u32) -> Fabric {
        Fabric::new(SimParams::paper(), n, 42)
    }

    #[test]
    fn uncontended_transfer_time() {
        let mut f = fabric(36);
        // Same leaf (ranks 0 and 1): 2 channels, 2 hop latencies.
        let t0 = SimTime::from_us(100);
        let arrival = f.transfer(t0, 0, 1, 2048);
        let expect = t0
            + SimDuration::from_us(1)          // MPI latency
            + SimDuration::from_ns(200)        // 2 hops
            + SimDuration::from_ns(410);       // 2 KB serialization
        assert_eq!(arrival, expect);
    }

    #[test]
    fn cross_leaf_adds_hops() {
        let mut f = fabric(128);
        let t0 = SimTime::from_us(100);
        // Ranks 0 (leaf 0) and 20 (leaf 1): 4 channels.
        let arrival = f.transfer(t0, 0, 20, 2048);
        let expect = t0
            + SimDuration::from_us(1)
            + SimDuration::from_ns(400)
            + SimDuration::from_ns(410);
        assert_eq!(arrival, expect);
    }

    #[test]
    fn contention_serializes_shared_channel() {
        let mut f = fabric(36);
        let t0 = SimTime::from_us(0);
        // Two messages from rank 0: the host uplink is shared.
        let a1 = f.transfer(t0, 0, 1, 1 << 20);
        let a2 = f.transfer(t0, 0, 2, 1 << 20);
        assert!(a2 > a1, "second message must queue behind the first");
        // The second waits for the first's tail: ≥ one full serialization.
        let serial = f.params().serialize(1 << 20);
        assert!(a2.since(a1) >= serial - SimDuration::from_us(2));
        assert_eq!(f.stats().contended, 1);
    }

    #[test]
    fn disjoint_routes_do_not_contend() {
        let mut f = fabric(36);
        let t0 = SimTime::from_us(0);
        let a1 = f.transfer(t0, 0, 1, 1 << 20);
        let a2 = f.transfer(t0, 2, 3, 1 << 20);
        assert_eq!(a1, a2, "disjoint same-leaf routes are independent");
        assert_eq!(f.stats().contended, 0);
    }

    #[test]
    fn self_message_skips_fabric() {
        let mut f = fabric(8);
        let t0 = SimTime::from_us(5);
        assert_eq!(f.transfer(t0, 3, 3, 1 << 30), t0 + SimDuration::from_us(1));
    }

    #[test]
    fn bigger_messages_take_longer() {
        let mut f = fabric(8);
        let t0 = SimTime::from_us(0);
        let small = f.transfer(t0, 0, 1, 1024);
        let mut f2 = fabric(8);
        let large = f2.transfer(t0, 0, 1, 1 << 20);
        assert!(large > small);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric(8);
        f.transfer(SimTime::ZERO, 0, 1, 100);
        f.transfer(SimTime::ZERO, 1, 2, 200);
        assert_eq!(f.stats().messages, 2);
        assert_eq!(f.stats().bytes, 300);
    }
}
