//! Multi-generation InfiniBand link models and the sleep-depth ladder.
//!
//! The paper evaluates exactly one hardware point: IB 4X QDR links with
//! the WRPS 4X→1X width-reduction pair. This module generalizes that
//! point along two axes:
//!
//! * **Generations** — the IB signalling ladder (QDR → XDR), with the
//!   per-lane rates of the standard naming table (`getIBStandardName`):
//!   QDR 10, FDR 14, EDR 25, HDR 50, NDR 100, XDR 200 Gb/s per lane,
//!   four lanes per link. Each generation also carries a representative
//!   36–64-port switch power envelope so [`crate::SwitchPowerModel`]
//!   can report switch-level savings per generation.
//! * **Sleep depths** — a three-rung ladder: WRPS width reduction
//!   (4X→1X, µs-class retrain, 43% draw), rate reduction (all lanes
//!   drop to the lowest signalling rate, ~100 µs retrain, 25% draw) and
//!   deep sleep (buffers/crossbar down, ms-class wake, 10% draw). Each
//!   rung has its own wake latency, transition energy, and relative
//!   power floor.
//!
//! Everything here is opt-in: [`IbGeneration::Qdr`]'s parameters are
//! bit-identical to [`SimParams::paper`], and the ladder policy is off
//! by default, so the paper's exhibits are unchanged unless a caller
//! explicitly asks for another generation or depth.

use crate::config::SimParams;
use crate::switch_power::SwitchPowerModel;
use ibp_core::{PowerConfig, SleepKind};
use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// An InfiniBand signalling generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IbGeneration {
    /// Quad Data Rate: 10 Gb/s per lane, 40 Gb/s per 4X link (the
    /// paper's Table II configuration).
    Qdr,
    /// Fourteen Data Rate: 14 Gb/s per lane, 56 Gb/s per 4X link.
    Fdr,
    /// Enhanced Data Rate: 25 Gb/s per lane, 100 Gb/s per 4X link.
    Edr,
    /// High Data Rate: 50 Gb/s per lane, 200 Gb/s per 4X link.
    Hdr,
    /// Next Data Rate: 100 Gb/s per lane, 400 Gb/s per 4X link.
    Ndr,
    /// Extended Data Rate: 200 Gb/s per lane, 800 Gb/s per 4X link.
    Xdr,
}

impl Default for IbGeneration {
    /// The paper's generation.
    fn default() -> Self {
        IbGeneration::Qdr
    }
}

impl IbGeneration {
    /// Every generation, oldest (slowest) first.
    pub const ALL: [IbGeneration; 6] = [
        IbGeneration::Qdr,
        IbGeneration::Fdr,
        IbGeneration::Edr,
        IbGeneration::Hdr,
        IbGeneration::Ndr,
        IbGeneration::Xdr,
    ];

    /// Lanes per link (all modelled links are 4X).
    pub const LANES: u32 = 4;

    /// Per-lane signalling rate, Gb/s.
    #[must_use]
    pub fn per_lane_gbps(self) -> f64 {
        match self {
            IbGeneration::Qdr => 10.0,
            IbGeneration::Fdr => 14.0,
            IbGeneration::Edr => 25.0,
            IbGeneration::Hdr => 50.0,
            IbGeneration::Ndr => 100.0,
            IbGeneration::Xdr => 200.0,
        }
    }

    /// Full 4X link rate, Gb/s.
    #[must_use]
    pub fn link_gbps(self) -> f64 {
        f64::from(Self::LANES) * self.per_lane_gbps()
    }

    /// Standard name (`QDR`, `FDR`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IbGeneration::Qdr => "QDR",
            IbGeneration::Fdr => "FDR",
            IbGeneration::Edr => "EDR",
            IbGeneration::Hdr => "HDR",
            IbGeneration::Ndr => "NDR",
            IbGeneration::Xdr => "XDR",
        }
    }

    /// Parse a standard name, case-insensitively.
    #[must_use]
    pub fn from_name(name: &str) -> Option<IbGeneration> {
        Self::ALL.into_iter().find(|g| g.name().eq_ignore_ascii_case(name))
    }

    /// Map a 4X link rate to its standard name — the
    /// `getIBStandardName` thresholds (≥800 XDR, ≥400 NDR, ≥200 HDR,
    /// ≥100 EDR, ≥56 FDR, else QDR).
    #[must_use]
    pub fn from_rate_gbps(rate_gbps: f64) -> IbGeneration {
        match rate_gbps {
            r if r >= 800.0 => IbGeneration::Xdr,
            r if r >= 400.0 => IbGeneration::Ndr,
            r if r >= 200.0 => IbGeneration::Hdr,
            r if r >= 100.0 => IbGeneration::Edr,
            r if r >= 56.0 => IbGeneration::Fdr,
            _ => IbGeneration::Qdr,
        }
    }

    /// Ports on the representative edge switch of this generation.
    #[must_use]
    pub fn switch_ports(self) -> u32 {
        match self {
            IbGeneration::Qdr | IbGeneration::Fdr | IbGeneration::Edr => 36,
            IbGeneration::Hdr => 40,
            IbGeneration::Ndr | IbGeneration::Xdr => 64,
        }
    }

    /// Nominal power of the representative edge switch, watts
    /// (QDR/FDR match the paper's 130 W 36-port reference; later
    /// generations follow vendor-typical envelopes, monotonically
    /// rising with the signalling rate).
    #[must_use]
    pub fn switch_nominal_w(self) -> f64 {
        match self {
            IbGeneration::Qdr | IbGeneration::Fdr => 130.0,
            IbGeneration::Edr => 136.0,
            IbGeneration::Hdr => 247.0,
            IbGeneration::Ndr => 384.0,
            IbGeneration::Xdr => 560.0,
        }
    }

    /// Per-port link power at full rate: the switch's link share spread
    /// over its ports.
    #[must_use]
    pub fn port_power_w(self) -> f64 {
        let model = self.switch_power_model();
        model.nominal_w * model.link_share / f64::from(self.switch_ports())
    }

    /// Replay parameters for this generation: the paper's Table II with
    /// the link bandwidth swapped for this generation's 4X rate. For
    /// [`IbGeneration::Qdr`] this is exactly [`SimParams::paper`].
    #[must_use]
    pub fn sim_params(self) -> SimParams {
        SimParams {
            bandwidth_bps: self.link_gbps() * 1e9,
            generation: self,
            ..SimParams::paper()
        }
    }

    /// Switch power model for this generation's representative switch
    /// (component shares kept at the paper's split).
    #[must_use]
    pub fn switch_power_model(self) -> SwitchPowerModel {
        SwitchPowerModel {
            ports: self.switch_ports(),
            nominal_w: self.switch_nominal_w(),
            ..SwitchPowerModel::default()
        }
    }

    /// The sleep-depth ladder for this generation's links.
    #[must_use]
    pub fn ladder(self) -> SleepLadder {
        SleepLadder::for_generation(self)
    }
}

impl std::fmt::Display for IbGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rung of the sleep-depth ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderRung {
    /// The depth this rung describes.
    pub kind: SleepKind,
    /// Relative power floor while resting on this rung.
    pub power_fraction: f64,
    /// Wake latency back to full rate.
    pub wake_latency: SimDuration,
    /// Energy of one enter+exit transition pair, joules (the port draws
    /// full power for both transitions).
    pub transition_energy_j: f64,
}

/// The per-generation sleep-depth ladder, shallowest rung first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SleepLadder {
    /// The generation the ladder describes.
    pub generation: IbGeneration,
    /// Rungs in [`SleepKind::ALL`] order (WRPS, rate, deep).
    pub rungs: Vec<LadderRung>,
}

impl SleepLadder {
    /// Relative power floors per depth: WRPS 1X (43%, the paper's
    /// SX6036 measurement), rate reduction (25%), deep sleep (10%).
    pub const POWER_FRACTIONS: [f64; 3] = [0.43, 0.25, 0.10];

    /// Wake latencies per depth: lane retrain 10 µs, rate renegotiation
    /// 100 µs, buffers/crossbar power-up 1 ms.
    pub const WAKE_LATENCIES_US: [u64; 3] = [10, 100, 1_000];

    /// Build the standard ladder for a generation. Power floors and
    /// wake latencies are generation-independent (retrain time is set
    /// by handshake protocol, not by rate); transition energy scales
    /// with the generation's per-port power.
    #[must_use]
    pub fn for_generation(generation: IbGeneration) -> SleepLadder {
        let port_w = generation.port_power_w();
        let rungs = SleepKind::ALL
            .iter()
            .zip(Self::POWER_FRACTIONS)
            .zip(Self::WAKE_LATENCIES_US)
            .map(|((&kind, power_fraction), wake_us)| {
                let wake_latency = SimDuration::from_us(wake_us);
                LadderRung {
                    kind,
                    power_fraction,
                    wake_latency,
                    // Both transitions (off + on) bill the port at full
                    // power for one wake latency each.
                    transition_energy_j: 2.0 * port_w * wake_latency.as_secs_f64(),
                }
            })
            .collect();
        SleepLadder { generation, rungs }
    }

    /// The rung for a given depth.
    #[must_use]
    pub fn rung(&self, kind: SleepKind) -> &LadderRung {
        self.rungs
            .iter()
            .find(|r| r.kind == kind)
            .expect("standard ladders carry every depth")
    }

    /// Check the ladder's ordering invariants: walking deeper must
    /// strictly lower the power floor and must not shrink the wake
    /// latency.
    pub fn validate(&self) -> Result<(), String> {
        for pair in self.rungs.windows(2) {
            let (shallow, deep) = (&pair[0], &pair[1]);
            if deep.power_fraction >= shallow.power_fraction {
                return Err(format!(
                    "rung {} floor {} not below rung {} floor {}",
                    deep.kind.label(),
                    deep.power_fraction,
                    shallow.kind.label(),
                    shallow.power_fraction
                ));
            }
            if deep.wake_latency < shallow.wake_latency {
                return Err(format!(
                    "rung {} wake {} below rung {} wake {}",
                    deep.kind.label(),
                    deep.wake_latency,
                    shallow.kind.label(),
                    shallow.wake_latency
                ));
            }
        }
        Ok(())
    }

    /// A [`PowerConfig`] running this ladder: the paper's mechanism
    /// with the ladder policy enabled and the rung floors/latencies
    /// installed.
    #[must_use]
    pub fn power_config(&self, gt: SimDuration, displacement: f64) -> PowerConfig {
        let mut cfg = PowerConfig::paper(gt, displacement);
        cfg.low_power_fraction = self.rung(SleepKind::Wrps).power_fraction;
        cfg.rate_power_fraction = self.rung(SleepKind::Rate).power_fraction;
        cfg.deep_power_fraction = self.rung(SleepKind::Deep).power_fraction;
        cfg.t_react = self.rung(SleepKind::Wrps).wake_latency;
        cfg.rate_t_react = self.rung(SleepKind::Rate).wake_latency;
        cfg.deep_t_react = self.rung(SleepKind::Deep).wake_latency;
        cfg.with_ladder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_rates_follow_the_standard_table() {
        let per_lane: Vec<f64> =
            IbGeneration::ALL.iter().map(|g| g.per_lane_gbps()).collect();
        assert_eq!(per_lane, [10.0, 14.0, 25.0, 50.0, 100.0, 200.0]);
        assert_eq!(IbGeneration::Qdr.link_gbps(), 40.0);
        assert_eq!(IbGeneration::Fdr.link_gbps(), 56.0);
        assert_eq!(IbGeneration::Xdr.link_gbps(), 800.0);
    }

    #[test]
    fn rate_to_name_mapping_matches_get_ib_standard_name() {
        for g in IbGeneration::ALL {
            assert_eq!(IbGeneration::from_rate_gbps(g.link_gbps()), g);
        }
        // Thresholds are lower-inclusive, like the reference function.
        assert_eq!(IbGeneration::from_rate_gbps(55.9), IbGeneration::Qdr);
        assert_eq!(IbGeneration::from_rate_gbps(56.0), IbGeneration::Fdr);
        assert_eq!(IbGeneration::from_rate_gbps(1000.0), IbGeneration::Xdr);
    }

    #[test]
    fn names_roundtrip() {
        for g in IbGeneration::ALL {
            assert_eq!(IbGeneration::from_name(g.name()), Some(g));
            assert_eq!(IbGeneration::from_name(&g.name().to_lowercase()), Some(g));
        }
        assert_eq!(IbGeneration::from_name("sdr"), None);
    }

    #[test]
    fn qdr_params_are_bit_identical_to_paper() {
        assert_eq!(IbGeneration::Qdr.sim_params(), SimParams::paper());
        assert_eq!(
            IbGeneration::Qdr.switch_power_model(),
            crate::SwitchPowerModel::default()
        );
    }

    #[test]
    fn faster_generations_only_raise_bandwidth() {
        for g in IbGeneration::ALL {
            let p = g.sim_params();
            assert_eq!(p.bandwidth_bps, g.link_gbps() * 1e9);
            assert_eq!(p.t_react, SimParams::paper().t_react);
            assert_eq!(p.segment_bytes, SimParams::paper().segment_bytes);
        }
    }

    #[test]
    fn switch_power_rises_with_generation() {
        let mut last = 0.0;
        for g in IbGeneration::ALL {
            let w = g.switch_nominal_w();
            assert!(w >= last, "{g}: {w} W below predecessor {last} W");
            last = w;
            g.switch_power_model().validate().expect("model valid");
        }
    }

    #[test]
    fn every_generation_ladder_is_ordered() {
        for g in IbGeneration::ALL {
            let ladder = g.ladder();
            ladder.validate().expect("standard ladder ordered");
            assert_eq!(ladder.rungs.len(), 3);
            // Transition energy deepens with the rung: longer wakes at
            // the same port power cost more energy.
            assert!(
                ladder.rung(SleepKind::Deep).transition_energy_j
                    > ladder.rung(SleepKind::Wrps).transition_energy_j
            );
        }
    }

    #[test]
    fn ladder_power_config_is_valid_and_ladder_enabled() {
        let cfg = IbGeneration::Edr
            .ladder()
            .power_config(SimDuration::from_us(20), 0.01);
        assert_eq!(cfg.policy, ibp_core::PowerPolicy::Ladder);
        cfg.validate().expect("ladder config valid");
        assert!((cfg.rate_power_fraction - 0.25).abs() < 1e-12);
        assert_eq!(cfg.rate_t_react, SimDuration::from_us(100));
    }

    #[test]
    fn ladder_validate_flags_disorder() {
        let mut ladder = IbGeneration::Qdr.ladder();
        ladder.rungs[2].power_fraction = 0.9;
        assert!(ladder.validate().is_err());
        let mut ladder = IbGeneration::Qdr.ladder();
        ladder.rungs[1].wake_latency = SimDuration::from_ns(1);
        assert!(ladder.validate().is_err());
    }
}
