//! Decomposition of MPI collectives into point-to-point exchanges.
//!
//! Dimemas replays collectives with structured point-to-point phases; we
//! do the same so collective traffic exercises the fabric (and feels
//! contention) like any other traffic:
//!
//! * `Bcast` / `Reduce` — binomial trees (⌈log₂ n⌉ rounds);
//! * `Allreduce` / `Barrier` — binomial reduce to rank 0 + binomial
//!   broadcast (works for any process count);
//! * `Allgather` — ring (n−1 rounds, each passing one block);
//! * `Alltoall` — n−1 rounds of pairwise shifted exchange.
//!
//! Every rank executes the micro-op sequence returned for it; matching
//! per (src, dst) pair is FIFO, and because all ranks derive their
//! sequences from the same deterministic schedule, sends and receives
//! pair up exactly.

use ibp_trace::{MpiOp, Rank};

/// One primitive network action of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Inject a message (non-blocking at this level; the sender is busy
    /// only for the injection time).
    SendTo {
        /// Destination rank.
        to: Rank,
        /// Payload bytes.
        bytes: u64,
    },
    /// Block until the matching message arrives.
    RecvFrom {
        /// Source rank.
        from: Rank,
        /// Payload bytes (bookkeeping only; timing is set by the send).
        bytes: u64,
    },
}

/// Stream the binomial-tree *reduce* (toward `root`) micro-ops for `me`.
fn reduce_tree(me: Rank, root: Rank, n: u32, bytes: u64, sink: &mut impl FnMut(MicroOp)) {
    let v = (me + n - root) % n; // virtual rank with root at 0
    let mut mask: u32 = 1;
    while mask < n {
        if v & mask != 0 {
            let peer = ((v - mask) + root) % n;
            sink(MicroOp::SendTo { to: peer, bytes });
            return; // contribution sent; done
        }
        if v + mask < n {
            let peer = ((v + mask) + root) % n;
            sink(MicroOp::RecvFrom { from: peer, bytes });
        }
        mask <<= 1;
    }
}

/// Stream the binomial-tree *broadcast* (from `root`) micro-ops for `me`.
fn bcast_tree(me: Rank, root: Rank, n: u32, bytes: u64, sink: &mut impl FnMut(MicroOp)) {
    let v = (me + n - root) % n;
    // Receive from the parent (unless root).
    let mut mask: u32 = 1;
    while mask < n {
        if v & mask != 0 {
            let peer = ((v - mask) + root) % n;
            sink(MicroOp::RecvFrom { from: peer, bytes });
            break;
        }
        mask <<= 1;
    }
    // Forward to children, highest bit first (mirror of the search above).
    let mut mask = if mask >= n {
        // me == root (no set bit found below n): start from the top.
        let mut m: u32 = 1;
        while m < n {
            m <<= 1;
        }
        m >> 1
    } else {
        mask >> 1
    };
    while mask > 0 {
        if v + mask < n && v & mask == 0 {
            let peer = ((v + mask) + root) % n;
            sink(MicroOp::SendTo { to: peer, bytes });
        }
        mask >>= 1;
    }
}

/// Stream the micro-ops rank `me` of `n` executes for a collective into
/// `sink`, in execution order, without allocating.
///
/// This is the engine-facing form: the replay hot path feeds the ops
/// straight into its step queue (and its arrival-arena precount walks the
/// same schedule), so no temporary vector is built per event.
///
/// Point-to-point and request-based operations are not handled here (the
/// replay engine executes them directly); calling this with one emits
/// nothing.
pub fn for_each_micro(op: &MpiOp, me: Rank, n: u32, sink: &mut impl FnMut(MicroOp)) {
    match *op {
        MpiOp::Barrier => {
            // 1-byte allreduce.
            reduce_tree(me, 0, n, 1, sink);
            bcast_tree(me, 0, n, 1, sink);
        }
        MpiOp::Allreduce { bytes } => {
            reduce_tree(me, 0, n, bytes, sink);
            bcast_tree(me, 0, n, bytes, sink);
        }
        MpiOp::Bcast { root, bytes } => bcast_tree(me, root, n, bytes, sink),
        MpiOp::Reduce { root, bytes } => reduce_tree(me, root, n, bytes, sink),
        MpiOp::Allgather { bytes } => {
            // Ring: n−1 rounds, each forwarding one block.
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            for _ in 0..n.saturating_sub(1) {
                sink(MicroOp::SendTo { to: right, bytes });
                sink(MicroOp::RecvFrom { from: left, bytes });
            }
        }
        MpiOp::Alltoall { bytes } => {
            // Pairwise shifted exchange.
            for k in 1..n {
                let to = (me + k) % n;
                let from = (me + n - k) % n;
                sink(MicroOp::SendTo { to, bytes });
                sink(MicroOp::RecvFrom { from, bytes });
            }
        }
        _ => {}
    }
}

/// Decompose a collective into the micro-ops executed by rank `me` of
/// `n`, collected into a vector ([`for_each_micro`] with a `Vec` sink).
#[must_use]
pub fn decompose(op: &MpiOp, me: Rank, n: u32) -> Vec<MicroOp> {
    let mut out = Vec::new();
    for_each_micro(op, me, n, &mut |m| out.push(m));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate the matching of all ranks' micro-op streams: every send
    /// must pair with exactly one receive on the destination, FIFO per
    /// (src, dst).
    fn check_matching(op: &MpiOp, n: u32) {
        use std::collections::HashMap;
        let mut sends: HashMap<(Rank, Rank), u64> = HashMap::new();
        let mut recvs: HashMap<(Rank, Rank), u64> = HashMap::new();
        for me in 0..n {
            for m in decompose(op, me, n) {
                match m {
                    MicroOp::SendTo { to, .. } => {
                        assert_ne!(to, me, "self-send in collective");
                        assert!(to < n);
                        *sends.entry((me, to)).or_default() += 1;
                    }
                    MicroOp::RecvFrom { from, .. } => {
                        assert_ne!(from, me, "self-recv in collective");
                        assert!(from < n);
                        *recvs.entry((from, me)).or_default() += 1;
                    }
                }
            }
        }
        assert_eq!(sends, recvs, "sends and recvs must pair up for {op:?} n={n}");
    }

    #[test]
    fn allreduce_matches_at_all_counts() {
        for n in [2, 3, 4, 5, 7, 8, 9, 16, 36, 100, 128] {
            check_matching(&MpiOp::Allreduce { bytes: 8 }, n);
        }
    }

    #[test]
    fn barrier_matches() {
        for n in [2, 3, 8, 13, 64] {
            check_matching(&MpiOp::Barrier, n);
        }
    }

    #[test]
    fn bcast_and_reduce_match_with_nonzero_root() {
        for n in [2, 5, 8, 100] {
            for root in [0, 1, n - 1] {
                check_matching(&MpiOp::Bcast { root, bytes: 100 }, n);
                check_matching(&MpiOp::Reduce { root, bytes: 100 }, n);
            }
        }
    }

    #[test]
    fn allgather_and_alltoall_match() {
        for n in [2, 3, 8, 17] {
            check_matching(&MpiOp::Allgather { bytes: 64 }, n);
            check_matching(&MpiOp::Alltoall { bytes: 64 }, n);
        }
    }

    #[test]
    fn bcast_root_only_sends() {
        let ops = decompose(&MpiOp::Bcast { root: 3, bytes: 10 }, 3, 8);
        assert!(ops
            .iter()
            .all(|m| matches!(m, MicroOp::SendTo { .. })));
        assert!(!ops.is_empty());
    }

    #[test]
    fn reduce_leaf_only_sends_once() {
        // In an 8-rank binomial reduce to 0, odd ranks send immediately.
        let ops = decompose(&MpiOp::Reduce { root: 0, bytes: 10 }, 5, 8);
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], MicroOp::SendTo { to: 4, .. }));
    }

    #[test]
    fn alltoall_covers_all_peers() {
        let ops = decompose(&MpiOp::Alltoall { bytes: 4 }, 2, 6);
        let sends: Vec<Rank> = ops
            .iter()
            .filter_map(|m| match m {
                MicroOp::SendTo { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        let mut expect: Vec<Rank> = (0..6).filter(|&r| r != 2).collect();
        let mut got = sends.clone();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn p2p_ops_decompose_to_nothing() {
        assert!(decompose(&MpiOp::Send { to: 1, bytes: 5 }, 0, 4).is_empty());
        assert!(decompose(&MpiOp::Wait { req: 0 }, 0, 4).is_empty());
    }

    #[test]
    fn sink_and_vec_forms_agree() {
        let ops = [
            MpiOp::Barrier,
            MpiOp::Allreduce { bytes: 8 },
            MpiOp::Bcast { root: 2, bytes: 64 },
            MpiOp::Reduce { root: 1, bytes: 64 },
            MpiOp::Allgather { bytes: 32 },
            MpiOp::Alltoall { bytes: 16 },
            MpiOp::Send { to: 1, bytes: 5 },
        ];
        for op in &ops {
            for n in [2, 3, 8, 13] {
                for me in 0..n {
                    let mut streamed = Vec::new();
                    for_each_micro(op, me, n, &mut |m| streamed.push(m));
                    assert_eq!(streamed, decompose(op, me, n), "{op:?} me={me} n={n}");
                }
            }
        }
    }

    #[test]
    fn two_rank_allreduce_is_one_exchange() {
        let a = decompose(&MpiOp::Allreduce { bytes: 8 }, 0, 2);
        let b = decompose(&MpiOp::Allreduce { bytes: 8 }, 1, 2);
        // Rank 1 sends its contribution, rank 0 reduces and sends back.
        assert_eq!(
            a,
            vec![
                MicroOp::RecvFrom { from: 1, bytes: 8 },
                MicroOp::SendTo { to: 1, bytes: 8 }
            ]
        );
        assert_eq!(
            b,
            vec![
                MicroOp::SendTo { to: 0, bytes: 8 },
                MicroOp::RecvFrom { from: 0, bytes: 8 }
            ]
        );
    }
}
