//! Simulation parameters — the paper's Table II.

use ibp_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Network and replay parameters (defaults reproduce Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Link bandwidth in bits per second (IB 4X QDR: 40 Gb/s).
    pub bandwidth_bps: f64,
    /// Segment (MTU) size in bytes.
    pub segment_bytes: u64,
    /// Software MPI latency charged per message.
    pub mpi_latency: SimDuration,
    /// Per-switch-hop latency (port arbitration + crossbar).
    pub hop_latency: SimDuration,
    /// Nodes per leaf switch (XGFT m1 = 18).
    pub nodes_per_leaf: u32,
    /// Number of leaf switches (XGFT m2 = 14).
    pub leaf_count: u32,
    /// Number of top switches (XGFT w2 = 18).
    pub top_count: u32,
    /// CPU speed ratio applied to replayed compute bursts (Table II: 1).
    pub cpu_speedup: f64,
    /// Relative power draw of a link in WRPS low-power (1X) mode.
    pub low_power_fraction: f64,
    /// Lane reactivation/deactivation time.
    pub t_react: SimDuration,
    /// Deep-sleep reactivation time (buffers/crossbar; §VI extension).
    pub deep_t_react: SimDuration,
    /// Retrain time of the rate-reduced state (ladder middle rung).
    #[serde(default = "default_rate_t_react")]
    pub rate_t_react: SimDuration,
    /// Relative power draw of a link in rate-reduced mode.
    #[serde(default = "default_rate_power_fraction")]
    pub rate_power_fraction: f64,
    /// Relative power draw of a link in deep sleep.
    #[serde(default = "default_deep_power_fraction")]
    pub deep_power_fraction: f64,
    /// The link generation being modelled (QDR unless a caller asked
    /// for another rung of the generation ladder; see
    /// [`crate::genlink::IbGeneration::sim_params`]).
    #[serde(default)]
    pub generation: crate::genlink::IbGeneration,
}

/// Relative draw of the deep sleep state (buffers/crossbar down).
pub const DEEP_POWER_FRACTION: f64 = 0.10;

/// Relative draw of the rate-reduced state (all lanes at the lowest
/// signalling rate).
pub const RATE_POWER_FRACTION: f64 = 0.25;

fn default_rate_t_react() -> SimDuration {
    SimDuration::from_us(100)
}

fn default_rate_power_fraction() -> f64 {
    RATE_POWER_FRACTION
}

fn default_deep_power_fraction() -> f64 {
    DEEP_POWER_FRACTION
}

impl Default for SimParams {
    /// Table II: XGFT(2;18,14;1,18), 40 Gb/s, 2 KB segments, 1 µs MPI
    /// latency, random routing, CPU speedup 1.
    fn default() -> Self {
        SimParams {
            bandwidth_bps: 40e9,
            segment_bytes: 2048,
            mpi_latency: SimDuration::from_us(1),
            hop_latency: SimDuration::from_ns(100),
            nodes_per_leaf: 18,
            leaf_count: 14,
            top_count: 18,
            cpu_speedup: 1.0,
            low_power_fraction: 0.43,
            t_react: SimDuration::from_us(10),
            deep_t_react: SimDuration::from_ms(1),
            rate_t_react: default_rate_t_react(),
            rate_power_fraction: default_rate_power_fraction(),
            deep_power_fraction: default_deep_power_fraction(),
            generation: crate::genlink::IbGeneration::Qdr,
        }
    }
}

impl SimParams {
    /// The paper's configuration (alias for [`Default`]).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Parameters for a link generation (alias for
    /// [`crate::genlink::IbGeneration::sim_params`]).
    #[must_use]
    pub fn for_generation(generation: crate::genlink::IbGeneration) -> Self {
        generation.sim_params()
    }

    /// Total node slots in the fat tree.
    #[inline]
    #[must_use]
    pub fn node_capacity(&self) -> u32 {
        self.nodes_per_leaf * self.leaf_count
    }

    /// Serialization time of `bytes` on one link.
    #[inline]
    #[must_use]
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        // bits / (bits/sec) — IB data rate already accounts for encoding.
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Number of segments a message of `bytes` is split into.
    #[inline]
    #[must_use]
    pub fn segments(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.segment_bytes).max(1)
    }

    /// A human-readable rendering of the configuration (the `params`
    /// binary prints this as the Table II reproduction).
    pub fn describe(&self) -> String {
        format!(
            "Simulator            event-driven replay (Dimemas/Venus-style)\n\
             Connectivity         XGFT(2;{},{};1,{})\n\
             Topology             Extended Generalized Fat Tree, 2 levels\n\
             Switch technology    InfiniBand\n\
             Network bandwidth    {} Gbit/s\n\
             Segment size         {} KB\n\
             MPI latency          {}\n\
             CPU speedup          {}\n\
             Routing scheme       random (up/down)\n\
             WRPS low-power draw  {}% of nominal\n\
             T_react              {}",
            self.nodes_per_leaf,
            self.leaf_count,
            self.top_count,
            self.bandwidth_bps / 1e9,
            self.segment_bytes / 1024,
            self.mpi_latency,
            self.cpu_speedup,
            (self.low_power_fraction * 100.0).round(),
            self.t_react,
        )
    }

    /// End of a compute burst of `dur` starting at `t` (CPU speedup
    /// applied).
    #[inline]
    #[must_use]
    pub fn compute_end(&self, t: SimTime, dur: SimDuration) -> SimTime {
        if self.cpu_speedup == 1.0 {
            t + dur
        } else {
            t + dur.mul_f64(1.0 / self.cpu_speedup)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = SimParams::paper();
        assert_eq!(p.bandwidth_bps, 40e9);
        assert_eq!(p.segment_bytes, 2048);
        assert_eq!(p.mpi_latency, SimDuration::from_us(1));
        assert_eq!(p.node_capacity(), 252);
        assert_eq!(p.cpu_speedup, 1.0);
    }

    #[test]
    fn serialization_time() {
        let p = SimParams::paper();
        // 2 KB at 40 Gb/s = 2048*8/40e9 s ≈ 409.6 ns.
        let t = p.serialize(2048);
        assert_eq!(t.as_ns(), 410);
        // 1 MB ≈ 209.7 µs.
        let t = p.serialize(1 << 20);
        assert!((t.as_us_f64() - 209.7).abs() < 0.1);
    }

    #[test]
    fn segment_count() {
        let p = SimParams::paper();
        assert_eq!(p.segments(1), 1);
        assert_eq!(p.segments(2048), 1);
        assert_eq!(p.segments(2049), 2);
        assert_eq!(p.segments(0), 1);
    }

    #[test]
    fn compute_end_with_speedup() {
        let mut p = SimParams::paper();
        let t = SimTime::from_us(10);
        assert_eq!(p.compute_end(t, SimDuration::from_us(4)), SimTime::from_us(14));
        p.cpu_speedup = 2.0;
        assert_eq!(p.compute_end(t, SimDuration::from_us(4)), SimTime::from_us(12));
    }

    #[test]
    fn describe_mentions_topology() {
        let d = SimParams::paper().describe();
        assert!(d.contains("XGFT(2;18,14;1,18)"));
        assert!(d.contains("40 Gbit/s"));
    }

    #[test]
    fn pre_ladder_params_still_parse() {
        use serde::{Deserialize, Serialize};
        let mut v = SimParams::paper().to_value();
        let serde::Value::Map(entries) = &mut v else {
            panic!("params serialize as an object");
        };
        entries.retain(|(k, _)| {
            !matches!(
                k.as_str(),
                "rate_t_react" | "rate_power_fraction" | "deep_power_fraction" | "generation"
            )
        });
        let back = SimParams::from_value(&v).unwrap();
        assert_eq!(back, SimParams::paper());
    }

    #[test]
    fn generation_params_only_change_bandwidth_and_tag() {
        use crate::genlink::IbGeneration;
        let p = SimParams::for_generation(IbGeneration::Hdr);
        assert_eq!(p.bandwidth_bps, 200e9);
        assert_eq!(p.generation, IbGeneration::Hdr);
        let mut back_to_paper = p;
        back_to_paper.bandwidth_bps = 40e9;
        back_to_paper.generation = IbGeneration::Qdr;
        assert_eq!(back_to_paper, SimParams::paper());
    }
}
