//! Trace replay — the Dimemas side of the co-simulation.
//!
//! Each rank replays its trace: compute bursts elapse verbatim (scaled by
//! the CPU-speedup parameter), MPI operations are re-simulated against
//! the fabric, and — when annotations from the power-saving runtime are
//! supplied — per-call overheads, reactivation penalties, and lane-off
//! directives are applied, exactly as the paper inserts its new events
//! into the traces before re-simulating.
//!
//! ## Engine
//!
//! A conservative, deterministic scheduler advances one rank at a time,
//! always the one with the smallest local clock (ties broken by rank id),
//! so fabric contention is resolved in near-global time order. A rank
//! blocks when it needs a message that has not been sent yet; the sender
//! wakes it. Sends are eager (the sender is busy only for the injection
//! time), matching Dimemas' default. Traces validated by
//! [`ibp_trace::Trace::validate`] cannot deadlock: every receive has a
//! matching send and request discipline is enforced.

use crate::collectives::{decompose, MicroOp};
use crate::config::SimParams;
use crate::fabric::Fabric;
use crate::power::LinkPowerTracker;
use crate::results::SimResult;
use ibp_core::{SleepKind, TraceAnnotations};
use ibp_simcore::{SimDuration, SimTime};
use ibp_trace::{MpiOp, Rank, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Replay options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Seed for routing randomness.
    pub seed: u64,
    /// Record full per-rank link power timelines (costs memory; needed
    /// only for visualisation).
    pub record_timelines: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            seed: 0x1B,
            record_timelines: false,
        }
    }
}

/// Cost of posting a non-blocking operation (library bookkeeping only).
const POST_OVERHEAD: SimDuration = SimDuration::from_ns(300);

#[derive(Debug, Clone, Copy)]
enum Step {
    Send { to: Rank, bytes: u64 },
    Recv { pair: u32, k: u32 },
    IsendPost { to: Rank, bytes: u64, req: u32 },
    WaitReq { req: u32 },
    OpDone,
}

#[derive(Debug, Clone, Copy)]
enum Req {
    Send { done: SimTime },
    Recv { pair: u32, k: u32 },
}

struct RankState {
    t: SimTime,
    ev: usize,
    micro: VecDeque<Step>,
    reqs: HashMap<u32, Req>,
    next_directive: usize,
    pending_sleep: Option<(SimTime, SimDuration, SleepKind)>,
    power: LinkPowerTracker,
    done: bool,
}

enum StepOutcome {
    Ran,
    Parked { pair: u32, k: u32 },
    EventDone,
}

/// The replay engine.
struct Replay<'a> {
    trace: &'a Trace,
    ann: Option<&'a TraceAnnotations>,
    params: SimParams,
    fabric: Fabric,
    ranks: Vec<RankState>,
    /// Per (src,dst) pair: arrival times of sends, in send order.
    arrivals: Vec<Vec<SimTime>>,
    /// Per pair: next receive index to hand out.
    recv_next: Vec<u32>,
    /// Ranks parked waiting for the k-th send on a pair.
    parked: HashMap<(u32, u32), Rank>,
    /// Runnable ranks, keyed by (clock, rank) — min first.
    heap: BinaryHeap<Reverse<(SimTime, Rank)>>,
}

/// Replay `trace` through the modelled network. Supplying `ann` turns on
/// the power-saving mechanism's effects (overheads, penalties, lane-off
/// windows); `None` replays the unmodified, power-unaware baseline.
pub fn replay(
    trace: &Trace,
    ann: Option<&TraceAnnotations>,
    params: &SimParams,
    opts: &ReplayOptions,
) -> SimResult {
    let n = trace.nprocs;
    assert!(n >= 1, "empty trace");
    if let Some(a) = ann {
        assert_eq!(a.ranks.len(), n as usize, "annotation/trace rank mismatch");
        for (r, ra) in a.ranks.iter().enumerate() {
            assert_eq!(
                ra.overhead.len(),
                trace.ranks[r].call_count(),
                "rank {r}: annotation length mismatch"
            );
        }
    }

    let mut engine = Replay {
        trace,
        ann,
        params: params.clone(),
        fabric: Fabric::new(params.clone(), n, opts.seed),
        ranks: (0..n)
            .map(|_| RankState {
                t: SimTime::ZERO,
                ev: 0,
                micro: VecDeque::new(),
                reqs: HashMap::new(),
                next_directive: 0,
                pending_sleep: None,
                power: LinkPowerTracker::new(opts.record_timelines),
                done: false,
            })
            .collect(),
        arrivals: vec![Vec::new(); (n as usize) * (n as usize)],
        recv_next: vec![0; (n as usize) * (n as usize)],
        parked: HashMap::new(),
        heap: BinaryHeap::new(),
    };

    for r in 0..n {
        engine.heap.push(Reverse((SimTime::ZERO, r)));
    }
    engine.run();

    let exec = engine
        .ranks
        .iter()
        .map(|s| s.t)
        .max()
        .unwrap_or(SimTime::ZERO);
    SimResult {
        exec_time: exec.since(SimTime::ZERO),
        rank_finish: engine.ranks.iter().map(|s| s.t).collect(),
        link_low: engine.ranks.iter().map(|s| s.power.low_time).collect(),
        link_deep: engine.ranks.iter().map(|s| s.power.deep_time).collect(),
        link_transition: engine
            .ranks
            .iter()
            .map(|s| s.power.transition_time)
            .collect(),
        link_sleeps: engine.ranks.iter().map(|s| s.power.sleeps).collect(),
        timelines: opts.record_timelines.then(|| {
            engine
                .ranks
                .iter()
                .map(|s| s.power.timeline.clone().expect("recording enabled"))
                .collect()
        }),
        fabric: engine.fabric.stats(),
        low_power_fraction: params.low_power_fraction,
    }
}

impl<'a> Replay<'a> {
    fn pair(&self, src: Rank, dst: Rank) -> u32 {
        src * self.trace.nprocs + dst
    }

    fn run(&mut self) {
        while let Some(Reverse((_, r))) = self.heap.pop() {
            self.advance_rank(r);
        }
        if let Some((r, s)) = self.ranks.iter().enumerate().find(|(_, s)| !s.done) {
            panic!(
                "replay deadlock: rank {r} stuck at event {} t={} ({} parked)",
                s.ev,
                s.t,
                self.parked.len()
            );
        }
    }

    /// Advance rank `r` by one scheduling quantum.
    ///
    /// Exactly one micro step (or one event expansion) runs per scheduler
    /// pop, and the rank re-enters the heap at its updated clock. This
    /// keeps fabric channel claims in near-global time order: a send
    /// executes only when its rank's clock is minimal among runnable
    /// ranks, so contention outcomes do not depend on bookkeeping
    /// artifacts of the rank iteration order.
    fn advance_rank(&mut self, r: Rank) {
        if self.ranks[r as usize].micro.is_empty() {
            if !self.expand_next_event(r) {
                return; // rank finished
            }
            // Compute (and overhead/penalty) advanced the clock; requeue
            // so the operation itself executes in global time order.
            let t = self.ranks[r as usize].t;
            self.heap.push(Reverse((t, r)));
            return;
        }
        match self.execute_step(r) {
            StepOutcome::Ran | StepOutcome::EventDone => {
                let t = self.ranks[r as usize].t;
                self.heap.push(Reverse((t, r)));
            }
            StepOutcome::Parked { pair, k } => {
                self.parked.insert((pair, k), r);
            }
        }
    }

    /// Expand the next trace event of rank `r` into micro steps, applying
    /// compute, overhead, penalty and sleep finalisation. Returns `false`
    /// when the rank's trace is exhausted (the rank is then finished).
    fn expand_next_event(&mut self, r: Rank) -> bool {
        let ri = r as usize;
        let rank_trace = &self.trace.ranks[ri];
        let ev = self.ranks[ri].ev;
        if ev >= rank_trace.events.len() {
            // Trailing compute, final sleep resolution, done.
            let state = &mut self.ranks[ri];
            if !state.done {
                let t = self.params.compute_end(state.t, rank_trace.final_compute);
                state.t = t;
                if let Some((t0, timer, kind)) = state.pending_sleep.take() {
                    state.power.apply_sleep_kind(&self.params, t0, timer, t, kind);
                }
                state.done = true;
            }
            return false;
        }

        let event = &rank_trace.events[ev];
        let (overhead, penalty) = match self.ann {
            Some(a) => (a.ranks[ri].overhead[ev], a.ranks[ri].penalty[ev]),
            None => (SimDuration::ZERO, SimDuration::ZERO),
        };

        // Compute burst (+ mechanism overhead), then the rank wants the
        // network: resolve any pending sleep against that demand, then
        // serve the reactivation stall.
        {
            let state = &mut self.ranks[ri];
            state.t = self
                .params
                .compute_end(state.t, event.compute_before + overhead);
            if let Some((t0, timer, kind)) = state.pending_sleep.take() {
                state
                    .power
                    .apply_sleep_kind(&self.params, t0, timer, state.t, kind);
            }
            state.t += penalty;
        }

        // Expand the operation.
        let mut steps: Vec<Step> = Vec::new();
        match &event.op {
            MpiOp::Send { to, bytes } => steps.push(Step::Send {
                to: *to,
                bytes: *bytes,
            }),
            MpiOp::Recv { from, bytes } => {
                let _ = bytes;
                let k = self.reserve_recv(*from, r);
                steps.push(Step::Recv {
                    pair: self.pair(*from, r),
                    k,
                });
            }
            MpiOp::Sendrecv {
                to,
                send_bytes,
                from,
                recv_bytes,
            } => {
                let _ = recv_bytes;
                steps.push(Step::Send {
                    to: *to,
                    bytes: *send_bytes,
                });
                let k = self.reserve_recv(*from, r);
                steps.push(Step::Recv {
                    pair: self.pair(*from, r),
                    k,
                });
            }
            MpiOp::Isend { to, bytes, req } => steps.push(Step::IsendPost {
                to: *to,
                bytes: *bytes,
                req: *req,
            }),
            MpiOp::Irecv { from, bytes, req } => {
                let _ = bytes;
                let k = self.reserve_recv(*from, r);
                let pair = self.pair(*from, r);
                self.ranks[ri].reqs.insert(*req, Req::Recv { pair, k });
                self.ranks[ri].t += POST_OVERHEAD;
            }
            MpiOp::Wait { req } => steps.push(Step::WaitReq { req: *req }),
            MpiOp::Waitall { reqs } => {
                steps.extend(reqs.iter().map(|&req| Step::WaitReq { req }));
            }
            op => {
                for m in decompose(op, r, self.trace.nprocs) {
                    steps.push(match m {
                        MicroOp::SendTo { to, bytes } => Step::Send { to, bytes },
                        MicroOp::RecvFrom { from, bytes } => {
                            let _ = bytes;
                            let k = self.reserve_recv(from, r);
                            Step::Recv {
                                pair: self.pair(from, r),
                                k,
                            }
                        }
                    });
                }
            }
        }
        steps.push(Step::OpDone);
        self.ranks[ri].micro.extend(steps);
        true
    }

    fn reserve_recv(&mut self, from: Rank, me: Rank) -> u32 {
        let p = self.pair(from, me) as usize;
        let k = self.recv_next[p];
        self.recv_next[p] += 1;
        k
    }

    /// Execute the front micro step of rank `r`.
    fn execute_step(&mut self, r: Rank) -> StepOutcome {
        let ri = r as usize;
        let step = *self.ranks[ri].micro.front().expect("step available");
        match step {
            Step::Send { to, bytes } => {
                self.ranks[ri].micro.pop_front();
                let t = self.ranks[ri].t;
                self.deliver(r, to, t, bytes);
                self.ranks[ri].t = self.fabric.inject_done(t, bytes);
                StepOutcome::Ran
            }
            Step::IsendPost { to, bytes, req } => {
                self.ranks[ri].micro.pop_front();
                let t = self.ranks[ri].t;
                self.deliver(r, to, t, bytes);
                let done = self.fabric.inject_done(t, bytes);
                self.ranks[ri].reqs.insert(req, Req::Send { done });
                self.ranks[ri].t += POST_OVERHEAD;
                StepOutcome::Ran
            }
            Step::Recv { pair, k } => match self.arrival(pair, k) {
                Some(at) => {
                    self.ranks[ri].micro.pop_front();
                    self.ranks[ri].t = self.ranks[ri].t.max(at);
                    StepOutcome::Ran
                }
                None => StepOutcome::Parked { pair, k },
            },
            Step::WaitReq { req } => {
                let handle = *self.ranks[ri]
                    .reqs
                    .get(&req)
                    .expect("wait on unknown request (trace validated?)");
                match handle {
                    Req::Send { done } => {
                        self.ranks[ri].micro.pop_front();
                        self.ranks[ri].reqs.remove(&req);
                        self.ranks[ri].t = self.ranks[ri].t.max(done);
                        StepOutcome::Ran
                    }
                    Req::Recv { pair, k } => match self.arrival(pair, k) {
                        Some(at) => {
                            self.ranks[ri].micro.pop_front();
                            self.ranks[ri].reqs.remove(&req);
                            self.ranks[ri].t = self.ranks[ri].t.max(at);
                            StepOutcome::Ran
                        }
                        None => StepOutcome::Parked { pair, k },
                    },
                }
            }
            Step::OpDone => {
                self.ranks[ri].micro.pop_front();
                let ev = self.ranks[ri].ev;
                self.ranks[ri].ev += 1;
                if let Some(a) = self.ann {
                    let ra = &a.ranks[ri];
                    let di = self.ranks[ri].next_directive;
                    if di < ra.directives.len() && ra.directives[di].after_event == ev {
                        let state = &mut self.ranks[ri];
                        state.next_directive += 1;
                        // The lanes shut down when the call completes
                        // (plus any reactive-policy delay); a window still
                        // in its wake transition pushes the start forward
                        // (the tracker clamps to its floor).
                        state.pending_sleep = Some((
                            state.t + ra.directives[di].delay,
                            ra.directives[di].timer,
                            ra.directives[di].kind,
                        ));
                    }
                }
                StepOutcome::EventDone
            }
        }
    }

    fn arrival(&self, pair: u32, k: u32) -> Option<SimTime> {
        self.arrivals[pair as usize].get(k as usize).copied()
    }

    /// Inject a message and wake any rank parked on it.
    fn deliver(&mut self, src: Rank, dst: Rank, t: SimTime, bytes: u64) {
        let arrival = self.fabric.transfer(t, src, dst, bytes);
        let p = self.pair(src, dst);
        let k = self.arrivals[p as usize].len() as u32;
        self.arrivals[p as usize].push(arrival);
        if let Some(w) = self.parked.remove(&(p, k)) {
            let t = self.ranks[w as usize].t;
            self.heap.push(Reverse((t, w)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::{annotate_trace, PowerConfig};
    use ibp_trace::TraceBuilder;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn ping_pong(iters: u32, bytes: u64) -> Trace {
        let mut b = TraceBuilder::new("pingpong", 2);
        for _ in 0..iters {
            b.compute(0, us(100));
            b.op(0, MpiOp::Send { to: 1, bytes });
            b.op(0, MpiOp::Recv { from: 1, bytes });
            b.compute(1, us(100));
            b.op(1, MpiOp::Recv { from: 0, bytes });
            b.op(1, MpiOp::Send { to: 0, bytes });
        }
        b.build()
    }

    #[test]
    fn ping_pong_timing() {
        let t = ping_pong(1, 2048);
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default());
        // One round trip after 100 µs compute each: ~100 + 2×(1 µs + hops
        // + 0.41 µs) ≈ 103 µs.
        let exec = r.exec_time.as_us_f64();
        assert!((102.0..106.0).contains(&exec), "exec {exec}");
        assert_eq!(r.fabric.messages, 2);
    }

    #[test]
    fn compute_only_trace_sums_compute() {
        let mut b = TraceBuilder::new("compute", 2);
        b.compute(0, us(500));
        b.op(0, MpiOp::Barrier);
        b.compute(1, us(500));
        b.op(1, MpiOp::Barrier);
        b.compute(0, us(200));
        b.compute(1, us(100));
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default());
        // 500 µs + barrier (µs-scale) + 200 µs trailing.
        let exec = r.exec_time.as_us_f64();
        assert!((700.0..705.0).contains(&exec), "exec {exec}");
    }

    #[test]
    fn imbalance_propagates_through_barrier() {
        let mut b = TraceBuilder::new("imb", 4);
        for r in 0..4u32 {
            b.compute(r, us(100 * (u64::from(r) + 1))); // 100..400 µs
            b.op(r, MpiOp::Barrier);
            b.compute(r, us(50));
        }
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default());
        // Everyone leaves the barrier after the slowest (400 µs) rank.
        let exec = r.exec_time.as_us_f64();
        assert!((450.0..460.0).contains(&exec), "exec {exec}");
        for f in &r.rank_finish {
            assert!(f.as_us_f64() >= 450.0);
        }
    }

    #[test]
    fn nonblocking_overlap_beats_blocking() {
        // Exchange with Isend/Irecv + Waitall vs sequential Send/Recv
        // ordering that serialises.
        let bytes = 1 << 20; // 1 MB ≈ 210 µs serialization
        let mut b = TraceBuilder::new("nb", 2);
        for r in 0..2u32 {
            let peer = 1 - r;
            let r1 = b.irecv(r, peer, bytes);
            let r2 = b.isend(r, peer, bytes);
            b.op(r, MpiOp::Waitall { reqs: vec![r1, r2] });
        }
        let nb = replay(&b.build(), None, &SimParams::paper(), &ReplayOptions::default());

        // One serialization (~210 µs) suffices: the two transfers overlap.
        let one_serial = SimParams::paper().serialize(bytes).as_us_f64();
        assert!(
            nb.exec_time.as_us_f64() < 1.2 * one_serial,
            "non-blocking exchange failed to overlap: {}",
            nb.exec_time
        );

        let mut b = TraceBuilder::new("blk", 2);
        // Serialised ping-pong: rank 1 receives before it sends, so its
        // send cannot start until rank 0's full message has arrived.
        b.op(0, MpiOp::Send { to: 1, bytes });
        b.op(0, MpiOp::Recv { from: 1, bytes });
        b.op(1, MpiOp::Recv { from: 0, bytes });
        b.op(1, MpiOp::Send { to: 0, bytes });
        let blk = replay(&b.build(), None, &SimParams::paper(), &ReplayOptions::default());

        assert!(
            blk.exec_time.as_us_f64() > 1.8 * one_serial,
            "serialised ping-pong should need two serializations: {}",
            blk.exec_time
        );
        assert!(nb.exec_time < blk.exec_time);
    }

    #[test]
    fn contention_extends_execution() {
        // Many ranks all sending large messages to rank 0 at once.
        let bytes = 1 << 20;
        let mut b = TraceBuilder::new("incast", 8);
        for r in 1..8u32 {
            b.op(r, MpiOp::Send { to: 0, bytes });
        }
        for r in 1..8u32 {
            b.op(0, MpiOp::Recv { from: r, bytes });
        }
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default());
        // 7 MB must serialise through rank 0's host downlink: ≥ 7 × 210 µs.
        assert!(
            r.exec_time >= us(1400),
            "incast too fast: {}",
            r.exec_time
        );
        assert!(r.fabric.contended > 0);
    }

    #[test]
    fn deterministic_replay() {
        let t = ping_pong(50, 4096);
        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let a = replay(&t, None, &p, &o);
        let b = replay(&t, None, &p, &o);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn annotated_replay_accumulates_low_power() {
        // A predictable 2-rank iterative pattern.
        let mut b = TraceBuilder::new("iter", 2);
        for _ in 0..40 {
            for r in 0..2u32 {
                b.compute(r, us(500));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: 1 - r,
                        send_bytes: 4096,
                        from: 1 - r,
                        recv_bytes: 4096,
                    },
                );
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        let t = b.build();
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&t, &cfg);
        assert!(ann.total_directives() > 0);

        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let baseline = replay(&t, None, &p, &o);
        let managed = replay(&t, Some(&ann), &p, &o);

        assert!(baseline.link_low.iter().all(|l| l.is_zero()));
        assert!(managed.link_low.iter().all(|l| !l.is_zero()));
        let saving = managed.power_saving_pct();
        assert!(saving > 10.0 && saving < 57.0, "saving {saving}");
        // Overheads make the managed run slightly slower, but only
        // slightly (the pattern is perfectly predictable).
        let slow = managed.slowdown_pct(&baseline);
        assert!((0.0..2.0).contains(&slow), "slowdown {slow}");
    }

    #[test]
    fn timelines_recorded_when_requested() {
        let t = ping_pong(3, 1024);
        let o = ReplayOptions {
            record_timelines: true,
            ..ReplayOptions::default()
        };
        let r = replay(&t, None, &SimParams::paper(), &o);
        let tls = r.timelines.expect("timelines requested");
        assert_eq!(tls.len(), 2);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_recv_panics_as_deadlock() {
        // Hand-build an invalid trace (skipping validate) where rank 0
        // waits for a message nobody sends.
        let mut b = TraceBuilder::new("bad", 2);
        b.op(0, MpiOp::Recv { from: 1, bytes: 64 });
        let t = b.build(); // validate() would fail; replay must detect too
        replay(&t, None, &SimParams::paper(), &ReplayOptions::default());
    }
}
