//! Trace replay — the Dimemas side of the co-simulation.
//!
//! Each rank replays its trace: compute bursts elapse verbatim (scaled by
//! the CPU-speedup parameter), MPI operations are re-simulated against
//! the fabric, and — when annotations from the power-saving runtime are
//! supplied — per-call overheads, reactivation penalties, and lane-off
//! directives are applied, exactly as the paper inserts its new events
//! into the traces before re-simulating.
//!
//! ## Engine
//!
//! A conservative, deterministic scheduler advances one rank at a time,
//! always the one with the smallest local clock (ties broken by rank id),
//! so fabric contention is resolved in near-global time order. A rank
//! blocks when it needs a message that has not been sent yet; the sender
//! wakes it. Sends are eager (the sender is busy only for the injection
//! time), matching Dimemas' default. Traces validated by
//! [`ibp_trace::Trace::validate`] cannot deadlock: every receive has a
//! matching send and request discipline is enforced.
//!
//! ## Memory
//!
//! All growable engine state lives in a [`ReplayScratch`] arena that is
//! reused across replays: a pre-pass counts the sends of every (src, dst)
//! pair (decomposing collectives through the same schedule the engine
//! executes), prefix sums turn the counts into offsets into one flat
//! arrival array, and parked waiters are per-pair slots (only the
//! destination rank ever receives on a pair, so at most one rank can wait
//! on it). [`replay`] keeps a thread-local scratch; sweeps that replay
//! thousands of cells can pass their own via [`replay_with_scratch`].

use crate::collectives::{for_each_micro, MicroOp};
use crate::config::SimParams;
use crate::fabric::Fabric;
use crate::faults::{FaultConfig, FaultPlan, FaultStats};
use crate::power::LinkPowerTracker;
use crate::results::SimResult;
use fxhash::FxHashMap;
use ibp_core::{SleepKind, TraceAnnotations};
use ibp_simcore::{SimDuration, SimTime};
use ibp_trace::{MpiOp, Rank, Trace};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Replay options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Seed for routing randomness.
    pub seed: u64,
    /// Record full per-rank link power timelines (costs memory; needed
    /// only for visualisation).
    pub record_timelines: bool,
    /// Optional fault injection (see [`crate::faults`]); `None` replays
    /// a perfectly reliable fabric.
    pub faults: Option<FaultConfig>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            seed: 0x1B,
            record_timelines: false,
            faults: None,
        }
    }
}

/// Why a replay could not run (or could not finish).
///
/// Replay inputs come straight from files and CLI flags, so malformed
/// input must surface as a value, not a panic: the CLI prints these and
/// exits non-zero.
/// `#[non_exhaustive]`: downstream matches must keep a wildcard arm so
/// new error variants don't break them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The trace has no ranks.
    EmptyTrace,
    /// The annotation set covers a different number of ranks than the
    /// trace.
    AnnotationRankMismatch {
        /// Ranks in the trace.
        trace: u32,
        /// Ranks in the annotation set.
        annotated: usize,
    },
    /// One rank's annotation arrays do not line up with its call count.
    AnnotationLengthMismatch {
        /// The offending rank.
        rank: usize,
        /// MPI calls in the trace for that rank.
        calls: usize,
        /// Entries in the annotation arrays.
        annotated: usize,
    },
    /// The fault configuration is out of range (probability outside
    /// `[0, 1]`, inverted outage bounds, …).
    InvalidFaultConfig(String),
    /// The trace deadlocked: a rank waits for a message nobody sends.
    /// Traces accepted by `Trace::validate` cannot reach this.
    Deadlock {
        /// First stuck rank.
        rank: usize,
        /// Event index the rank is stuck at.
        event: usize,
        /// How many ranks were parked on missing messages.
        parked: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyTrace => write!(f, "trace has no ranks"),
            ReplayError::AnnotationRankMismatch { trace, annotated } => write!(
                f,
                "annotation/trace rank mismatch: trace has {trace} ranks, \
                 annotations cover {annotated}"
            ),
            ReplayError::AnnotationLengthMismatch {
                rank,
                calls,
                annotated,
            } => write!(
                f,
                "rank {rank}: annotation length mismatch ({calls} MPI calls \
                 in trace, {annotated} annotated)"
            ),
            ReplayError::InvalidFaultConfig(msg) => {
                write!(f, "invalid fault configuration: {msg}")
            }
            ReplayError::Deadlock {
                rank,
                event,
                parked,
            } => write!(
                f,
                "replay deadlock: rank {rank} stuck at event {event} \
                 ({parked} parked)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Cost of posting a non-blocking operation (library bookkeeping only).
const POST_OVERHEAD: SimDuration = SimDuration::from_ns(300);

#[derive(Debug, Clone, Copy)]
enum Step {
    Send { to: Rank, bytes: u64 },
    Recv { pair: u32, k: u32 },
    IsendPost { to: Rank, bytes: u64, req: u32 },
    WaitReq { req: u32 },
    OpDone,
}

#[derive(Debug, Clone, Copy)]
enum Req {
    Send { done: SimTime },
    Recv { pair: u32, k: u32 },
}

struct RankState {
    t: SimTime,
    ev: usize,
    micro: VecDeque<Step>,
    reqs: FxHashMap<u32, Req>,
    next_directive: usize,
    pending_sleep: Option<(SimTime, SimDuration, SleepKind)>,
    power: LinkPowerTracker,
    done: bool,
}

enum StepOutcome {
    Ran,
    Parked { pair: u32, k: u32 },
    EventDone,
}

/// "No rank is parked on this pair" sentinel for [`ReplayScratch`].
const NO_WAITER: Rank = Rank::MAX;

/// Reusable buffers for the replay engine.
///
/// A replay's growable state — the arrival arena, receive cursors, parked
/// waiters, the step expansion buffer and the scheduler heap — lives here
/// so that back-to-back replays (parameter sweeps run thousands) recycle
/// the allocations instead of rebuilding `nprocs²` vectors every call.
/// [`replay`] keeps one per thread automatically; hand a scratch to
/// [`replay_with_scratch`] to control reuse explicitly.
///
/// The arrival arena is flat: a precount pass tallies every pair's sends
/// (walking the exact collective schedule the engine replays), an
/// exclusive prefix sum turns the tallies into `base` offsets, and pair
/// `p`'s arrivals occupy `times[base[p] .. base[p] + len[p]]`. Steady
/// state replay therefore never reallocates or rehashes.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    /// Exclusive prefix sums of per-pair send counts (`pairs + 1` long).
    base: Vec<usize>,
    /// Sends delivered so far per pair.
    len: Vec<u32>,
    /// Flat arrival times; pair `p` owns `times[base[p]..base[p]+len[p]]`.
    times: Vec<SimTime>,
    /// Per pair: next receive index to hand out.
    recv_next: Vec<u32>,
    /// Rank parked on each pair ([`NO_WAITER`] when none).
    parked_rank: Vec<Rank>,
    /// Which send index the parked rank waits for.
    parked_k: Vec<u32>,
    /// Reusable event-expansion buffer.
    step_buf: Vec<Step>,
    /// Runnable ranks, keyed by (clock, rank) — min first.
    heap: BinaryHeap<Reverse<(SimTime, Rank)>>,
}

impl ReplayScratch {
    /// An empty scratch; arenas are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every arena for `trace` and reset per-run state.
    fn prepare(&mut self, trace: &Trace) {
        let nprocs = trace.nprocs;
        let pairs = (nprocs as usize) * (nprocs as usize);
        self.len.clear();
        self.len.resize(pairs, 0);
        self.recv_next.clear();
        self.recv_next.resize(pairs, 0);
        self.parked_rank.clear();
        self.parked_rank.resize(pairs, NO_WAITER);
        self.parked_k.clear();
        self.parked_k.resize(pairs, 0);
        self.heap.clear();
        self.step_buf.clear();

        // Exact per-pair send counts, accumulated shifted by one so the
        // in-place prefix sum below yields exclusive base offsets.
        self.base.clear();
        self.base.resize(pairs + 1, 0);
        for (r, rank_trace) in trace.ranks.iter().enumerate() {
            let r = r as Rank;
            for ev in &rank_trace.events {
                match &ev.op {
                    MpiOp::Send { to, .. }
                    | MpiOp::Isend { to, .. }
                    | MpiOp::Sendrecv { to, .. } => {
                        self.base[(r * nprocs + *to) as usize + 1] += 1;
                    }
                    MpiOp::Recv { .. }
                    | MpiOp::Irecv { .. }
                    | MpiOp::Wait { .. }
                    | MpiOp::Waitall { .. } => {}
                    op => for_each_micro(op, r, nprocs, &mut |m| {
                        if let MicroOp::SendTo { to, .. } = m {
                            self.base[(r * nprocs + to) as usize + 1] += 1;
                        }
                    }),
                }
            }
        }
        for p in 0..pairs {
            self.base[p + 1] += self.base[p];
        }
        let total = self.base[pairs];
        self.times.clear();
        self.times.resize(total, SimTime::ZERO);
    }
}

/// The replay engine.
struct Replay<'a> {
    trace: &'a Trace,
    ann: Option<&'a TraceAnnotations>,
    params: SimParams,
    fabric: Fabric,
    ranks: Vec<RankState>,
    /// Arenas (arrivals, cursors, parked slots, heap), prepared for this
    /// trace and recycled across replays.
    scratch: &'a mut ReplayScratch,
    /// How many ranks are parked on missing messages.
    parked: usize,
    /// Fault drawing plan (None on a reliable fabric).
    faults: Option<FaultPlan>,
    /// Aggregate fault accounting.
    fault_stats: FaultStats,
}

/// Replay `trace` through the modelled network. Supplying `ann` turns on
/// the power-saving mechanism's effects (overheads, penalties, lane-off
/// windows); `None` replays the unmodified, power-unaware baseline.
///
/// Engine buffers come from a per-thread [`ReplayScratch`], so repeated
/// calls on one thread reuse their allocations; see
/// [`replay_with_scratch`] to manage the scratch yourself.
pub fn replay(
    trace: &Trace,
    ann: Option<&TraceAnnotations>,
    params: &SimParams,
    opts: &ReplayOptions,
) -> Result<SimResult, ReplayError> {
    thread_local! {
        static SCRATCH: RefCell<ReplayScratch> = RefCell::new(ReplayScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => replay_with_scratch(trace, ann, params, opts, &mut scratch),
        // Re-entrant call (replay invoked from inside a replay-owned
        // callback on this thread): fall back to a throwaway scratch.
        Err(_) => replay_with_scratch(trace, ann, params, opts, &mut ReplayScratch::new()),
    })
}

/// [`replay`] with an explicitly managed buffer arena. The scratch is
/// resized for `trace` and left ready for the next call; results are
/// identical whether the scratch is fresh or recycled.
pub fn replay_with_scratch(
    trace: &Trace,
    ann: Option<&TraceAnnotations>,
    params: &SimParams,
    opts: &ReplayOptions,
    scratch: &mut ReplayScratch,
) -> Result<SimResult, ReplayError> {
    let n = trace.nprocs;
    if n < 1 {
        return Err(ReplayError::EmptyTrace);
    }
    if let Some(a) = ann {
        if a.ranks.len() != n as usize {
            return Err(ReplayError::AnnotationRankMismatch {
                trace: n,
                annotated: a.ranks.len(),
            });
        }
        for (r, ra) in a.ranks.iter().enumerate() {
            let calls = trace.ranks[r].call_count();
            if ra.overhead.len() != calls {
                return Err(ReplayError::AnnotationLengthMismatch {
                    rank: r,
                    calls,
                    annotated: ra.overhead.len(),
                });
            }
        }
    }
    let faults = match &opts.faults {
        Some(cfg) => {
            cfg.validate().map_err(ReplayError::InvalidFaultConfig)?;
            (!cfg.is_quiet()).then(|| FaultPlan::new(cfg, n))
        }
        None => None,
    };

    scratch.prepare(trace);
    let mut engine = Replay {
        trace,
        ann,
        params: params.clone(),
        fabric: Fabric::new(params.clone(), n, opts.seed),
        ranks: (0..n)
            .map(|_| RankState {
                t: SimTime::ZERO,
                ev: 0,
                micro: VecDeque::new(),
                reqs: FxHashMap::default(),
                next_directive: 0,
                pending_sleep: None,
                power: LinkPowerTracker::new(opts.record_timelines),
                done: false,
            })
            .collect(),
        scratch,
        parked: 0,
        faults,
        fault_stats: FaultStats::default(),
    };

    for r in 0..n {
        engine.scratch.heap.push(Reverse((SimTime::ZERO, r)));
    }
    engine.run()?;

    let exec = engine
        .ranks
        .iter()
        .map(|s| s.t)
        .max()
        .unwrap_or(SimTime::ZERO);
    Ok(SimResult {
        exec_time: exec.since(SimTime::ZERO),
        rank_finish: engine.ranks.iter().map(|s| s.t).collect(),
        link_low: engine.ranks.iter().map(|s| s.power.low_time).collect(),
        link_deep: engine.ranks.iter().map(|s| s.power.deep_time).collect(),
        link_transition: engine
            .ranks
            .iter()
            .map(|s| s.power.transition_time)
            .collect(),
        link_sleeps: engine.ranks.iter().map(|s| s.power.sleeps).collect(),
        timelines: opts.record_timelines.then(|| {
            engine
                .ranks
                .iter()
                .map(|s| s.power.timeline.clone().expect("recording enabled"))
                .collect()
        }),
        fabric: engine.fabric.stats(),
        low_power_fraction: params.low_power_fraction,
        faults: engine.fault_stats,
    })
}

impl<'a> Replay<'a> {
    fn pair(&self, src: Rank, dst: Rank) -> u32 {
        src * self.trace.nprocs + dst
    }

    fn run(&mut self) -> Result<(), ReplayError> {
        while let Some(Reverse((_, r))) = self.scratch.heap.pop() {
            self.advance_rank(r);
        }
        if let Some((r, s)) = self.ranks.iter().enumerate().find(|(_, s)| !s.done) {
            return Err(ReplayError::Deadlock {
                rank: r,
                event: s.ev,
                parked: self.parked,
            });
        }
        Ok(())
    }

    /// Advance rank `r` by one scheduling quantum.
    ///
    /// Exactly one micro step (or one event expansion) runs per scheduler
    /// pop, and the rank re-enters the heap at its updated clock. This
    /// keeps fabric channel claims in near-global time order: a send
    /// executes only when its rank's clock is minimal among runnable
    /// ranks, so contention outcomes do not depend on bookkeeping
    /// artifacts of the rank iteration order.
    fn advance_rank(&mut self, r: Rank) {
        if self.ranks[r as usize].micro.is_empty() {
            if !self.expand_next_event(r) {
                return; // rank finished
            }
            // Compute (and overhead/penalty) advanced the clock; requeue
            // so the operation itself executes in global time order.
            let t = self.ranks[r as usize].t;
            self.scratch.heap.push(Reverse((t, r)));
            return;
        }
        match self.execute_step(r) {
            StepOutcome::Ran | StepOutcome::EventDone => {
                let t = self.ranks[r as usize].t;
                self.scratch.heap.push(Reverse((t, r)));
            }
            StepOutcome::Parked { pair, k } => {
                // Only the pair's destination rank ever receives on it,
                // so the slot is necessarily free.
                let p = pair as usize;
                debug_assert_eq!(self.scratch.parked_rank[p], NO_WAITER);
                self.scratch.parked_rank[p] = r;
                self.scratch.parked_k[p] = k;
                self.parked += 1;
            }
        }
    }

    /// Expand the next trace event of rank `r` into micro steps, applying
    /// compute, overhead, penalty and sleep finalisation. Returns `false`
    /// when the rank's trace is exhausted (the rank is then finished).
    fn expand_next_event(&mut self, r: Rank) -> bool {
        let ri = r as usize;
        let rank_trace = &self.trace.ranks[ri];
        let ev = self.ranks[ri].ev;
        if ev >= rank_trace.events.len() {
            // Trailing compute, final sleep resolution, done.
            let misfire = self.ranks[ri].pending_sleep.is_some()
                && self
                    .faults
                    .as_mut()
                    .is_some_and(|plan| plan.wake_misfires(ri));
            let state = &mut self.ranks[ri];
            if !state.done {
                let t = self.params.compute_end(state.t, rank_trace.final_compute);
                state.t = t;
                if let Some((t0, timer, kind)) = state.pending_sleep.take() {
                    if misfire {
                        // No later demand exists; the run's end bounds the
                        // window. The rank is done, so no stall is charged.
                        state.power.apply_sleep_misfire(&self.params, t0, t, kind);
                        self.fault_stats.wake_misfires += 1;
                    } else {
                        state.power.apply_sleep_kind(&self.params, t0, timer, t, kind);
                    }
                }
                state.done = true;
            }
            return false;
        }

        let event = &rank_trace.events[ev];
        let (overhead, penalty) = match self.ann {
            Some(a) => (a.ranks[ri].overhead[ev], a.ranks[ri].penalty[ev]),
            None => (SimDuration::ZERO, SimDuration::ZERO),
        };

        // Compute burst (+ mechanism overhead), then the rank wants the
        // network: resolve any pending sleep against that demand, then
        // serve the reactivation stall.
        {
            let misfire = self.ranks[ri].pending_sleep.is_some()
                && self
                    .faults
                    .as_mut()
                    .is_some_and(|plan| plan.wake_misfires(ri));
            let state = &mut self.ranks[ri];
            state.t = self
                .params
                .compute_end(state.t, event.compute_before + overhead);
            match state.pending_sleep.take() {
                Some((t0, _timer, kind)) if misfire => {
                    // Misfired wake timer: lanes stay low until this
                    // demand, and the rank pays the full reactivation
                    // time *instead of* the runtime's predicted penalty
                    // (the reactive wake replaces the planned one).
                    state
                        .power
                        .apply_sleep_misfire(&self.params, t0, state.t, kind);
                    let react = match kind {
                        SleepKind::Wrps => self.params.t_react,
                        SleepKind::Deep => self.params.deep_t_react,
                    };
                    state.t += react;
                    self.fault_stats.wake_misfires += 1;
                    self.fault_stats.misfire_stall += react;
                }
                Some((t0, timer, kind)) => {
                    state
                        .power
                        .apply_sleep_kind(&self.params, t0, timer, state.t, kind);
                    state.t += penalty;
                }
                None => state.t += penalty,
            }
        }

        // Expand the operation into the recycled step buffer (drained
        // into the rank's queue below, so it re-enters `prepare` empty).
        let mut steps = std::mem::take(&mut self.scratch.step_buf);
        match &event.op {
            MpiOp::Send { to, bytes } => steps.push(Step::Send {
                to: *to,
                bytes: *bytes,
            }),
            MpiOp::Recv { from, bytes } => {
                let _ = bytes;
                let k = self.reserve_recv(*from, r);
                steps.push(Step::Recv {
                    pair: self.pair(*from, r),
                    k,
                });
            }
            MpiOp::Sendrecv {
                to,
                send_bytes,
                from,
                recv_bytes,
            } => {
                let _ = recv_bytes;
                steps.push(Step::Send {
                    to: *to,
                    bytes: *send_bytes,
                });
                let k = self.reserve_recv(*from, r);
                steps.push(Step::Recv {
                    pair: self.pair(*from, r),
                    k,
                });
            }
            MpiOp::Isend { to, bytes, req } => steps.push(Step::IsendPost {
                to: *to,
                bytes: *bytes,
                req: *req,
            }),
            MpiOp::Irecv { from, bytes, req } => {
                let _ = bytes;
                let k = self.reserve_recv(*from, r);
                let pair = self.pair(*from, r);
                self.ranks[ri].reqs.insert(*req, Req::Recv { pair, k });
                self.ranks[ri].t += POST_OVERHEAD;
            }
            MpiOp::Wait { req } => steps.push(Step::WaitReq { req: *req }),
            MpiOp::Waitall { reqs } => {
                steps.extend(reqs.iter().map(|&req| Step::WaitReq { req }));
            }
            op => {
                for_each_micro(op, r, self.trace.nprocs, &mut |m| {
                    steps.push(match m {
                        MicroOp::SendTo { to, bytes } => Step::Send { to, bytes },
                        MicroOp::RecvFrom { from, bytes } => {
                            let _ = bytes;
                            let k = self.reserve_recv(from, r);
                            Step::Recv {
                                pair: self.pair(from, r),
                                k,
                            }
                        }
                    });
                });
            }
        }
        steps.push(Step::OpDone);
        self.ranks[ri].micro.extend(steps.drain(..));
        self.scratch.step_buf = steps;
        true
    }

    fn reserve_recv(&mut self, from: Rank, me: Rank) -> u32 {
        let p = self.pair(from, me) as usize;
        let k = self.scratch.recv_next[p];
        self.scratch.recv_next[p] += 1;
        k
    }

    /// Execute the front micro step of rank `r`.
    fn execute_step(&mut self, r: Rank) -> StepOutcome {
        let ri = r as usize;
        let step = *self.ranks[ri].micro.front().expect("step available");
        match step {
            Step::Send { to, bytes } => {
                self.ranks[ri].micro.pop_front();
                let t0 = self.ranks[ri].t;
                let (t, extra) = self.draw_send_fault(ri, t0, bytes);
                self.deliver(r, to, t, bytes, extra);
                self.ranks[ri].t = self.fabric.inject_done(t, bytes) + extra;
                StepOutcome::Ran
            }
            Step::IsendPost { to, bytes, req } => {
                self.ranks[ri].micro.pop_front();
                let t0 = self.ranks[ri].t;
                let (t, extra) = self.draw_send_fault(ri, t0, bytes);
                self.deliver(r, to, t, bytes, extra);
                let done = self.fabric.inject_done(t, bytes) + extra;
                self.ranks[ri].reqs.insert(req, Req::Send { done });
                self.ranks[ri].t += POST_OVERHEAD;
                StepOutcome::Ran
            }
            Step::Recv { pair, k } => match self.arrival(pair, k) {
                Some(at) => {
                    self.ranks[ri].micro.pop_front();
                    self.ranks[ri].t = self.ranks[ri].t.max(at);
                    StepOutcome::Ran
                }
                None => StepOutcome::Parked { pair, k },
            },
            Step::WaitReq { req } => {
                let handle = *self.ranks[ri]
                    .reqs
                    .get(&req)
                    .expect("wait on unknown request (trace validated?)");
                match handle {
                    Req::Send { done } => {
                        self.ranks[ri].micro.pop_front();
                        self.ranks[ri].reqs.remove(&req);
                        self.ranks[ri].t = self.ranks[ri].t.max(done);
                        StepOutcome::Ran
                    }
                    Req::Recv { pair, k } => match self.arrival(pair, k) {
                        Some(at) => {
                            self.ranks[ri].micro.pop_front();
                            self.ranks[ri].reqs.remove(&req);
                            self.ranks[ri].t = self.ranks[ri].t.max(at);
                            StepOutcome::Ran
                        }
                        None => StepOutcome::Parked { pair, k },
                    },
                }
            }
            Step::OpDone => {
                self.ranks[ri].micro.pop_front();
                let ev = self.ranks[ri].ev;
                self.ranks[ri].ev += 1;
                if let Some(a) = self.ann {
                    let ra = &a.ranks[ri];
                    let di = self.ranks[ri].next_directive;
                    if di < ra.directives.len() && ra.directives[di].after_event == ev {
                        let state = &mut self.ranks[ri];
                        state.next_directive += 1;
                        // The lanes shut down when the call completes
                        // (plus any reactive-policy delay); a window still
                        // in its wake transition pushes the start forward
                        // (the tracker clamps to its floor).
                        state.pending_sleep = Some((
                            state.t + ra.directives[di].delay,
                            ra.directives[di].timer,
                            ra.directives[di].kind,
                        ));
                    }
                }
                StepOutcome::EventDone
            }
        }
    }

    fn arrival(&self, pair: u32, k: u32) -> Option<SimTime> {
        let p = pair as usize;
        (k < self.scratch.len[p]).then(|| self.scratch.times[self.scratch.base[p] + k as usize])
    }

    /// Draw fault effects for a send leaving rank `link` at `t`: returns
    /// the (possibly flap-delayed) injection time and the extra
    /// serialization charged by a stuck-at-1X degraded link.
    fn draw_send_fault(&mut self, link: usize, t: SimTime, bytes: u64) -> (SimTime, SimDuration) {
        let Some(plan) = self.faults.as_mut() else {
            return (t, SimDuration::ZERO);
        };
        let fault = plan.send_fault(link, t);
        let mut t = t;
        if fault.flapped {
            self.fault_stats.link_flaps += 1;
            self.fault_stats.flap_delay += fault.flap_delay;
            t += fault.flap_delay;
        }
        let extra = if fault.degraded {
            let extra = FaultPlan::degraded_extra(&self.params, bytes);
            self.fault_stats.degraded_sends += 1;
            self.fault_stats.degraded_extra += extra;
            extra
        } else {
            SimDuration::ZERO
        };
        (t, extra)
    }

    /// Inject a message and wake any rank parked on it. `extra` is fault
    /// surcharge added to the arrival (degraded-link serialization).
    fn deliver(&mut self, src: Rank, dst: Rank, t: SimTime, bytes: u64, extra: SimDuration) {
        let arrival = self.fabric.transfer(t, src, dst, bytes) + extra;
        let p = self.pair(src, dst) as usize;
        let k = self.scratch.len[p];
        self.scratch.times[self.scratch.base[p] + k as usize] = arrival;
        self.scratch.len[p] = k + 1;
        if self.scratch.parked_rank[p] != NO_WAITER && self.scratch.parked_k[p] == k {
            let w = self.scratch.parked_rank[p];
            self.scratch.parked_rank[p] = NO_WAITER;
            self.parked -= 1;
            let t = self.ranks[w as usize].t;
            self.scratch.heap.push(Reverse((t, w)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::{annotate_trace, PowerConfig};
    use ibp_trace::TraceBuilder;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn ping_pong(iters: u32, bytes: u64) -> Trace {
        let mut b = TraceBuilder::new("pingpong", 2);
        for _ in 0..iters {
            b.compute(0, us(100));
            b.op(0, MpiOp::Send { to: 1, bytes });
            b.op(0, MpiOp::Recv { from: 1, bytes });
            b.compute(1, us(100));
            b.op(1, MpiOp::Recv { from: 0, bytes });
            b.op(1, MpiOp::Send { to: 0, bytes });
        }
        b.build()
    }

    #[test]
    fn ping_pong_timing() {
        let t = ping_pong(1, 2048);
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // One round trip after 100 µs compute each: ~100 + 2×(1 µs + hops
        // + 0.41 µs) ≈ 103 µs.
        let exec = r.exec_time.as_us_f64();
        assert!((102.0..106.0).contains(&exec), "exec {exec}");
        assert_eq!(r.fabric.messages, 2);
    }

    #[test]
    fn compute_only_trace_sums_compute() {
        let mut b = TraceBuilder::new("compute", 2);
        b.compute(0, us(500));
        b.op(0, MpiOp::Barrier);
        b.compute(1, us(500));
        b.op(1, MpiOp::Barrier);
        b.compute(0, us(200));
        b.compute(1, us(100));
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // 500 µs + barrier (µs-scale) + 200 µs trailing.
        let exec = r.exec_time.as_us_f64();
        assert!((700.0..705.0).contains(&exec), "exec {exec}");
    }

    #[test]
    fn imbalance_propagates_through_barrier() {
        let mut b = TraceBuilder::new("imb", 4);
        for r in 0..4u32 {
            b.compute(r, us(100 * (u64::from(r) + 1))); // 100..400 µs
            b.op(r, MpiOp::Barrier);
            b.compute(r, us(50));
        }
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // Everyone leaves the barrier after the slowest (400 µs) rank.
        let exec = r.exec_time.as_us_f64();
        assert!((450.0..460.0).contains(&exec), "exec {exec}");
        for f in &r.rank_finish {
            assert!(f.as_us_f64() >= 450.0);
        }
    }

    #[test]
    fn nonblocking_overlap_beats_blocking() {
        // Exchange with Isend/Irecv + Waitall vs sequential Send/Recv
        // ordering that serialises.
        let bytes = 1 << 20; // 1 MB ≈ 210 µs serialization
        let mut b = TraceBuilder::new("nb", 2);
        for r in 0..2u32 {
            let peer = 1 - r;
            let r1 = b.irecv(r, peer, bytes);
            let r2 = b.isend(r, peer, bytes);
            b.op(r, MpiOp::Waitall { reqs: vec![r1, r2] });
        }
        let nb = replay(&b.build(), None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");

        // One serialization (~210 µs) suffices: the two transfers overlap.
        let one_serial = SimParams::paper().serialize(bytes).as_us_f64();
        assert!(
            nb.exec_time.as_us_f64() < 1.2 * one_serial,
            "non-blocking exchange failed to overlap: {}",
            nb.exec_time
        );

        let mut b = TraceBuilder::new("blk", 2);
        // Serialised ping-pong: rank 1 receives before it sends, so its
        // send cannot start until rank 0's full message has arrived.
        b.op(0, MpiOp::Send { to: 1, bytes });
        b.op(0, MpiOp::Recv { from: 1, bytes });
        b.op(1, MpiOp::Recv { from: 0, bytes });
        b.op(1, MpiOp::Send { to: 0, bytes });
        let blk = replay(&b.build(), None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");

        assert!(
            blk.exec_time.as_us_f64() > 1.8 * one_serial,
            "serialised ping-pong should need two serializations: {}",
            blk.exec_time
        );
        assert!(nb.exec_time < blk.exec_time);
    }

    #[test]
    fn contention_extends_execution() {
        // Many ranks all sending large messages to rank 0 at once.
        let bytes = 1 << 20;
        let mut b = TraceBuilder::new("incast", 8);
        for r in 1..8u32 {
            b.op(r, MpiOp::Send { to: 0, bytes });
        }
        for r in 1..8u32 {
            b.op(0, MpiOp::Recv { from: r, bytes });
        }
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // 7 MB must serialise through rank 0's host downlink: ≥ 7 × 210 µs.
        assert!(
            r.exec_time >= us(1400),
            "incast too fast: {}",
            r.exec_time
        );
        assert!(r.fabric.contended > 0);
    }

    #[test]
    fn deterministic_replay() {
        let t = ping_pong(50, 4096);
        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let a = replay(&t, None, &p, &o).expect("replay");
        let b = replay(&t, None, &p, &o).expect("replay");
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn recycled_scratch_matches_fresh_scratch() {
        // Run traces of *different* shapes and sizes through one scratch;
        // every result must match a replay on a brand-new scratch.
        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let mut big = TraceBuilder::new("mix", 6);
        for r in 0..6u32 {
            b_round(&mut big, r);
        }
        let traces = [ping_pong(30, 4096), big.build(), ping_pong(2, 64)];
        let mut scratch = ReplayScratch::new();
        for t in &traces {
            let recycled = replay_with_scratch(t, None, &p, &o, &mut scratch).expect("replay");
            let fresh = replay_with_scratch(t, None, &p, &o, &mut ReplayScratch::new())
                .expect("replay");
            assert_eq!(recycled.exec_time, fresh.exec_time);
            assert_eq!(recycled.rank_finish, fresh.rank_finish);
            assert_eq!(recycled.fabric.messages, fresh.fabric.messages);
        }
    }

    fn b_round(b: &mut TraceBuilder, r: u32) {
        b.compute(r, us(50));
        b.op(r, MpiOp::Allreduce { bytes: 64 });
        b.op(r, MpiOp::Alltoall { bytes: 256 });
        b.op(r, MpiOp::Barrier);
    }

    #[test]
    fn arrival_arena_is_sized_exactly() {
        // After a run, every pair's delivered count must equal its
        // precounted capacity (base[p+1] - base[p]): collectives included.
        let mut b = TraceBuilder::new("exact", 5);
        for r in 0..5u32 {
            b.op(r, MpiOp::Allreduce { bytes: 8 });
            b.op(r, MpiOp::Allgather { bytes: 128 });
            b.op(r, MpiOp::Bcast { root: 3, bytes: 32 });
            b.op(
                r,
                MpiOp::Sendrecv {
                    to: (r + 1) % 5,
                    send_bytes: 512,
                    from: (r + 4) % 5,
                    recv_bytes: 512,
                },
            );
        }
        let t = b.build();
        let mut scratch = ReplayScratch::new();
        replay_with_scratch(&t, None, &SimParams::paper(), &ReplayOptions::default(), &mut scratch)
            .expect("replay");
        for p in 0..25 {
            let cap = scratch.base[p + 1] - scratch.base[p];
            assert_eq!(scratch.len[p] as usize, cap, "pair {p}");
            assert_eq!(scratch.recv_next[p] as usize, cap, "pair {p} recvs");
            assert_eq!(scratch.parked_rank[p], NO_WAITER, "pair {p} waiter left");
        }
    }

    #[test]
    fn annotated_replay_accumulates_low_power() {
        // A predictable 2-rank iterative pattern.
        let mut b = TraceBuilder::new("iter", 2);
        for _ in 0..40 {
            for r in 0..2u32 {
                b.compute(r, us(500));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: 1 - r,
                        send_bytes: 4096,
                        from: 1 - r,
                        recv_bytes: 4096,
                    },
                );
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        let t = b.build();
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&t, &cfg);
        assert!(ann.total_directives() > 0);

        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let baseline = replay(&t, None, &p, &o).expect("replay");
        let managed = replay(&t, Some(&ann), &p, &o).expect("replay");

        assert!(baseline.link_low.iter().all(|l| l.is_zero()));
        assert!(managed.link_low.iter().all(|l| !l.is_zero()));
        let saving = managed.power_saving_pct();
        assert!(saving > 10.0 && saving < 57.0, "saving {saving}");
        // Overheads make the managed run slightly slower, but only
        // slightly (the pattern is perfectly predictable).
        let slow = managed.slowdown_pct(&baseline);
        assert!((0.0..2.0).contains(&slow), "slowdown {slow}");
    }

    #[test]
    fn timelines_recorded_when_requested() {
        let t = ping_pong(3, 1024);
        let o = ReplayOptions {
            record_timelines: true,
            ..ReplayOptions::default()
        };
        let r = replay(&t, None, &SimParams::paper(), &o).expect("replay");
        let tls = r.timelines.expect("timelines requested");
        assert_eq!(tls.len(), 2);
    }

    #[test]
    fn unmatched_recv_reports_deadlock_error() {
        // Hand-build an invalid trace (skipping validate) where rank 0
        // waits for a message nobody sends.
        let mut b = TraceBuilder::new("bad", 2);
        b.op(0, MpiOp::Recv { from: 1, bytes: 64 });
        let t = b.build(); // validate() would fail; replay must detect too
        let err = replay(&t, None, &SimParams::paper(), &ReplayOptions::default())
            .expect_err("deadlock expected");
        match err {
            ReplayError::Deadlock { rank, .. } => assert_eq!(rank, 0),
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn empty_trace_is_a_typed_error() {
        let t = TraceBuilder::new("none", 0).build();
        let err = replay(&t, None, &SimParams::paper(), &ReplayOptions::default())
            .expect_err("empty trace");
        assert_eq!(err, ReplayError::EmptyTrace);
    }

    #[test]
    fn annotation_rank_mismatch_is_a_typed_error() {
        let two = ping_pong(1, 512);
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&two, &cfg);
        let mut b = TraceBuilder::new("three", 3);
        b.compute(0, us(10));
        let three = b.build();
        let err = replay(&three, Some(&ann), &SimParams::paper(), &ReplayOptions::default())
            .expect_err("rank mismatch");
        assert_eq!(
            err,
            ReplayError::AnnotationRankMismatch {
                trace: 3,
                annotated: 2
            }
        );
    }

    #[test]
    fn annotation_length_mismatch_is_a_typed_error() {
        let t = ping_pong(2, 512);
        let cfg = PowerConfig::paper(us(20), 0.10);
        let mut ann = annotate_trace(&t, &cfg);
        ann.ranks[1].overhead.pop();
        let err = replay(&t, Some(&ann), &SimParams::paper(), &ReplayOptions::default())
            .expect_err("length mismatch");
        match err {
            ReplayError::AnnotationLengthMismatch { rank, .. } => assert_eq!(rank, 1),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn invalid_fault_config_is_a_typed_error() {
        let t = ping_pong(1, 512);
        let opts = ReplayOptions {
            faults: Some(FaultConfig {
                flap_prob: 2.0,
                ..FaultConfig::quiet(1)
            }),
            ..ReplayOptions::default()
        };
        let err = replay(&t, None, &SimParams::paper(), &opts).expect_err("bad config");
        assert!(matches!(err, ReplayError::InvalidFaultConfig(_)));
    }

    #[test]
    fn quiet_faults_match_fault_free_exactly() {
        let t = ping_pong(20, 4096);
        let p = SimParams::paper();
        let clean = replay(&t, None, &p, &ReplayOptions::default()).expect("replay");
        let quiet = ReplayOptions {
            faults: Some(FaultConfig::quiet(0xD1C0)),
            ..ReplayOptions::default()
        };
        let faulted = replay(&t, None, &p, &quiet).expect("replay");
        assert_eq!(clean.exec_time, faulted.exec_time);
        assert_eq!(faulted.faults, FaultStats::default());
    }

    #[test]
    fn faults_slow_execution_and_are_counted() {
        let t = ping_pong(50, 4096);
        let p = SimParams::paper();
        let clean = replay(&t, None, &p, &ReplayOptions::default()).expect("replay");
        let stormy = ReplayOptions {
            faults: Some(FaultConfig::with_rate(0xD1C0, 100.0)),
            ..ReplayOptions::default()
        };
        let faulted = replay(&t, None, &p, &stormy).expect("replay");
        assert!(faulted.faults.link_flaps > 0, "{:?}", faulted.faults);
        assert!(faulted.exec_time > clean.exec_time);
        // The aggregate charge bounds the observed slowdown.
        let gap = faulted.exec_time.saturating_sub(clean.exec_time);
        assert!(gap <= faulted.faults.total_charged());
    }

    #[test]
    fn misfires_extend_low_power_and_charge_react() {
        // Predictable pattern → directives; 100% misfire rate.
        let mut b = TraceBuilder::new("iter", 2);
        for _ in 0..40 {
            for r in 0..2u32 {
                b.compute(r, us(500));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: 1 - r,
                        send_bytes: 4096,
                        from: 1 - r,
                        recv_bytes: 4096,
                    },
                );
            }
        }
        let t = b.build();
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&t, &cfg);
        assert!(ann.total_directives() > 0);

        let p = SimParams::paper();
        let managed = replay(&t, Some(&ann), &p, &ReplayOptions::default()).expect("replay");
        let misfiring = ReplayOptions {
            faults: Some(FaultConfig {
                wake_misfire_prob: 1.0,
                ..FaultConfig::quiet(9)
            }),
            ..ReplayOptions::default()
        };
        let faulted = replay(&t, Some(&ann), &p, &misfiring).expect("replay");
        assert!(faulted.faults.wake_misfires > 0);
        // Every misfire resolved against a demand stalls exactly T_react
        // (trailing-window misfires charge nothing; there are at most
        // nprocs of them).
        assert!(!faulted.faults.misfire_stall.is_zero());
        let cap = SimDuration::from_ns(p.t_react.as_ns() * faulted.faults.wake_misfires);
        assert!(faulted.faults.misfire_stall <= cap);
        // Lanes stay down until demand → at least as much low-power time.
        let low_ok: SimDuration = managed.link_low.iter().copied().sum();
        let low_bad: SimDuration = faulted.link_low.iter().copied().sum();
        assert!(low_bad >= low_ok, "{low_bad} < {low_ok}");
        assert!(faulted.exec_time >= managed.exec_time);
    }
}
