//! Trace replay — the Dimemas side of the co-simulation.
//!
//! Each rank replays its trace: compute bursts elapse verbatim (scaled by
//! the CPU-speedup parameter), MPI operations are re-simulated against
//! the fabric, and — when annotations from the power-saving runtime are
//! supplied — per-call overheads, reactivation penalties, and lane-off
//! directives are applied, exactly as the paper inserts its new events
//! into the traces before re-simulating.
//!
//! ## Engine
//!
//! A conservative, deterministic scheduler advances one rank at a time,
//! always the one with the smallest local clock (ties broken by rank id),
//! so fabric contention is resolved in near-global time order. A rank
//! blocks when it needs a message that has not been sent yet; the sender
//! wakes it. Sends are eager (the sender is busy only for the injection
//! time), matching Dimemas' default. Traces validated by
//! [`ibp_trace::Trace::validate`] cannot deadlock: every receive has a
//! matching send and request discipline is enforced.
//!
//! ## Memory and data layout
//!
//! All growable engine state lives in a [`ReplayScratch`] arena that is
//! reused across replays. A single build pass over the trace lays every
//! rank's micro-operations out as a flat structure-of-arrays **step
//! stream** (parallel kind/arg/bytes/k vectors walked by a per-rank
//! cursor), assigns each receive its arrival index up front, and counts
//! the sends of every (src, dst) pair; prefix sums turn the counts into
//! offsets into one flat arrival array, and parked waiters are per-pair
//! slots (only the destination rank ever receives on a pair, so at most
//! one rank can wait on it). Collective events expand through a memoized
//! schedule cache keyed by (collective, root, bytes, nprocs), so a sweep
//! decomposes each distinct collective once instead of once per cell.
//! [`replay`] keeps a thread-local scratch; sweeps that replay thousands
//! of cells can pass their own via [`replay_with_scratch`].
//!
//! Per-link *power* accounting is decoupled from the timing loop: sleep
//! windows are resolved (timestamped) on the hot path but buffered, and
//! each link's whole power timeline is advanced in one batched
//! [`LinkPowerTracker::apply_windows`] pass after the run — bit-identical
//! because a window's accounting depends only on its own fields and the
//! floor left by its per-link predecessor.

use crate::collectives::{for_each_micro, MicroOp};
use crate::config::SimParams;
use crate::fabric::Fabric;
use crate::faults::{FaultConfig, FaultPlan, FaultStats};
use crate::power::{LinkPowerTracker, SleepWindow};
use crate::results::SimResult;
use fxhash::FxHashMap;
use ibp_core::{SleepKind, TraceAnnotations};
use ibp_simcore::{SimDuration, SimTime};
use ibp_trace::{MpiOp, Rank, Trace};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Replay options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Seed for routing randomness.
    pub seed: u64,
    /// Record full per-rank link power timelines (costs memory; needed
    /// only for visualisation).
    pub record_timelines: bool,
    /// Optional fault injection (see [`crate::faults`]); `None` replays
    /// a perfectly reliable fabric.
    pub faults: Option<FaultConfig>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            seed: 0x1B,
            record_timelines: false,
            faults: None,
        }
    }
}

/// Why a replay could not run (or could not finish).
///
/// Replay inputs come straight from files and CLI flags, so malformed
/// input must surface as a value, not a panic: the CLI prints these and
/// exits non-zero.
/// `#[non_exhaustive]`: downstream matches must keep a wildcard arm so
/// new error variants don't break them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The trace has no ranks.
    EmptyTrace,
    /// The annotation set covers a different number of ranks than the
    /// trace.
    AnnotationRankMismatch {
        /// Ranks in the trace.
        trace: u32,
        /// Ranks in the annotation set.
        annotated: usize,
    },
    /// One rank's annotation arrays do not line up with its call count.
    AnnotationLengthMismatch {
        /// The offending rank.
        rank: usize,
        /// MPI calls in the trace for that rank.
        calls: usize,
        /// Entries in the annotation arrays.
        annotated: usize,
    },
    /// The fault configuration is out of range (probability outside
    /// `[0, 1]`, inverted outage bounds, …).
    InvalidFaultConfig(String),
    /// The trace deadlocked: a rank waits for a message nobody sends.
    /// Traces accepted by `Trace::validate` cannot reach this.
    Deadlock {
        /// First stuck rank.
        rank: usize,
        /// Event index the rank is stuck at.
        event: usize,
        /// How many ranks were parked on missing messages.
        parked: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyTrace => write!(f, "trace has no ranks"),
            ReplayError::AnnotationRankMismatch { trace, annotated } => write!(
                f,
                "annotation/trace rank mismatch: trace has {trace} ranks, \
                 annotations cover {annotated}"
            ),
            ReplayError::AnnotationLengthMismatch {
                rank,
                calls,
                annotated,
            } => write!(
                f,
                "rank {rank}: annotation length mismatch ({calls} MPI calls \
                 in trace, {annotated} annotated)"
            ),
            ReplayError::InvalidFaultConfig(msg) => {
                write!(f, "invalid fault configuration: {msg}")
            }
            ReplayError::Deadlock {
                rank,
                event,
                parked,
            } => write!(
                f,
                "replay deadlock: rank {rank} stuck at event {event} \
                 ({parked} parked)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Cost of posting a non-blocking operation (library bookkeeping only).
const POST_OVERHEAD: SimDuration = SimDuration::from_ns(300);

/// Micro-step kinds of the flat step stream (see [`ReplayScratch`]).
///
/// The stream is structure-of-arrays: `step_kind[i]` says how to read the
/// parallel `step_arg` / `step_bytes` / `step_k` slots at `i` (documented
/// per variant), so the hot loop dispatches on a one-byte tag and reads
/// dense arrays instead of matching a trace-event enum per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    /// Blocking send: `arg` = destination rank, `bytes` = payload.
    Send,
    /// Blocking receive: `arg` = pair id, `k` = arrival index.
    Recv,
    /// Non-blocking send post: `arg` = destination, `bytes` = payload,
    /// `k` = request id.
    IsendPost,
    /// Non-blocking receive post (consumed at event expansion, never
    /// scheduled): `arg` = pair id, `k` = arrival index, `bytes` =
    /// request id.
    IrecvPost,
    /// Wait on a posted request: `arg` = request id.
    WaitReq,
    /// Event boundary: advance the event counter, resolve directives.
    OpDone,
}

#[derive(Debug, Clone, Copy)]
enum Req {
    Send { done: SimTime },
    Recv { pair: u32, k: u32 },
}

struct RankState {
    t: SimTime,
    ev: usize,
    /// Cursor into the scratch step stream (this rank's segment).
    cur: usize,
    /// Whether the cursor sits inside an expanded event (between the
    /// event's expansion bookkeeping and its `OpDone`).
    in_event: bool,
    reqs: FxHashMap<u32, Req>,
    next_directive: usize,
    pending_sleep: Option<(SimTime, SimDuration, SleepKind)>,
    power: LinkPowerTracker,
    done: bool,
}

enum StepOutcome {
    Ran,
    Parked { pair: u32, k: u32 },
    EventDone,
}

/// What `advance_rank` did with its scheduling quantum.
enum Advance {
    /// The rank ran and re-enters scheduling at the given clock.
    Run(SimTime),
    /// The rank parked on a missing message or finished its trace.
    Blocked,
}

/// "No rank is parked on this pair" sentinel for [`ReplayScratch`].
const NO_WAITER: Rank = Rank::MAX;

/// Memoization key of a collective schedule: (collective id, root,
/// payload bytes, nprocs). A barrier shares the allreduce entry — it *is*
/// a 1-byte allreduce (reduce + broadcast over the same trees).
type SchedKey = (u8, Rank, u64, u32);

const K_ALLREDUCE: u8 = 1;
const K_BCAST: u8 = 2;
const K_REDUCE: u8 = 3;
const K_ALLGATHER: u8 = 4;
const K_ALLTOALL: u8 = 5;

/// Cache key for `op`, or `None` for point-to-point / request ops (which
/// never go through the schedule cache).
fn sched_key(op: &MpiOp, nprocs: u32) -> Option<SchedKey> {
    match *op {
        MpiOp::Barrier => Some((K_ALLREDUCE, 0, 1, nprocs)),
        MpiOp::Allreduce { bytes } => Some((K_ALLREDUCE, 0, bytes, nprocs)),
        MpiOp::Bcast { root, bytes } => Some((K_BCAST, root, bytes, nprocs)),
        MpiOp::Reduce { root, bytes } => Some((K_REDUCE, root, bytes, nprocs)),
        MpiOp::Allgather { bytes } => Some((K_ALLGATHER, 0, bytes, nprocs)),
        MpiOp::Alltoall { bytes } => Some((K_ALLTOALL, 0, bytes, nprocs)),
        _ => None,
    }
}

/// A memoized collective schedule: every rank's micro-ops, flattened into
/// parallel direction/peer arrays. Payload size is not stored — all
/// micro-ops of one collective carry the same byte count, which lives in
/// the cache key.
#[derive(Debug)]
struct CollSched {
    /// Exclusive per-rank offsets into `send` / `peer` (`nprocs + 1`).
    rank_base: Vec<u32>,
    /// Micro-op direction: send (`true`) or receive (`false`).
    send: Vec<bool>,
    /// Peer rank of each micro-op.
    peer: Vec<Rank>,
}

fn build_sched(op: &MpiOp, nprocs: u32) -> CollSched {
    let mut sched = CollSched {
        rank_base: Vec::with_capacity(nprocs as usize + 1),
        send: Vec::new(),
        peer: Vec::new(),
    };
    sched.rank_base.push(0);
    for me in 0..nprocs {
        for_each_micro(op, me, nprocs, &mut |m| match m {
            MicroOp::SendTo { to, .. } => {
                sched.send.push(true);
                sched.peer.push(to);
            }
            MicroOp::RecvFrom { from, .. } => {
                sched.send.push(false);
                sched.peer.push(from);
            }
        });
        sched.rank_base.push(sched.send.len() as u32);
    }
    sched
}

/// Entry bound on the schedule cache — far above what any sweep produces
/// (distinct (collective, bytes, nprocs) combinations), a guard against
/// unbounded growth under pathological byte diversity.
const SCHED_CACHE_CAP: usize = 4096;

/// Reusable buffers for the replay engine.
///
/// A replay's growable state — the SoA step stream, the arrival arena,
/// receive cursors, parked waiters, buffered sleep windows, the memoized
/// collective-schedule cache and the scheduler heap — lives here so that
/// back-to-back replays (parameter sweeps run thousands) recycle the
/// allocations instead of rebuilding `nprocs²` vectors every call.
/// [`replay`] keeps one per thread automatically; hand a scratch to
/// [`replay_with_scratch`] to control reuse explicitly.
///
/// The step stream is flat: one build pass expands every rank's events
/// (collectives through the schedule cache) into parallel
/// `step_kind` / `step_arg` / `step_bytes` / `step_k` arrays, with rank
/// `r`'s segment at `rank_step_base[r] .. rank_step_base[r + 1]`. The
/// same pass assigns receive arrival indices and tallies every pair's
/// sends; an exclusive prefix sum turns the tallies into `base` offsets,
/// and pair `p`'s arrivals occupy `times[base[p] .. base[p] + len[p]]`.
/// Steady-state replay therefore never reallocates or rehashes.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    /// Exclusive prefix sums of per-pair send counts (`pairs + 1` long).
    base: Vec<usize>,
    /// Sends delivered so far per pair.
    len: Vec<u32>,
    /// Flat arrival times; pair `p` owns `times[base[p]..base[p]+len[p]]`.
    times: Vec<SimTime>,
    /// Per pair: next receive index to hand out.
    recv_next: Vec<u32>,
    /// Rank parked on each pair ([`NO_WAITER`] when none).
    parked_rank: Vec<Rank>,
    /// Which send index the parked rank waits for.
    parked_k: Vec<u32>,
    /// Runnable ranks, keyed by (clock, rank) — min first.
    heap: BinaryHeap<Reverse<(SimTime, Rank)>>,
    /// Step stream: kind tags (see [`StepKind`] for slot meanings).
    step_kind: Vec<StepKind>,
    /// Step stream: peer rank / pair id / request id.
    step_arg: Vec<u32>,
    /// Step stream: payload bytes (request id for `IrecvPost`).
    step_bytes: Vec<u64>,
    /// Step stream: arrival index / request id.
    step_k: Vec<u32>,
    /// Per-rank segment starts in the step stream (`nprocs + 1`).
    rank_step_base: Vec<usize>,
    /// Flat per-event compute bursts — the only per-event trace field the
    /// hot loop still reads; rank `r` owns
    /// `ev_compute[rank_ev_base[r] .. rank_ev_base[r + 1]]`.
    ev_compute: Vec<SimDuration>,
    rank_ev_base: Vec<usize>,
    /// Resolved sleep windows per rank, buffered during the timing run
    /// and applied in one batched power pass afterwards.
    windows: Vec<Vec<SleepWindow>>,
    /// Memoized collective schedules, kept across `prepare` calls so a
    /// sweep decomposes each distinct collective once, not once per cell.
    sched: FxHashMap<SchedKey, CollSched>,
}

impl ReplayScratch {
    /// An empty scratch; arenas are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every arena for `trace`, build the step stream, and reset
    /// per-run state.
    ///
    /// One pass over the trace emits every micro step, counts each pair's
    /// sends (prefix-summed into `base`), and assigns receives their
    /// arrival indices. Assigning indices at build time is sound because
    /// only a pair's destination rank ever receives on it and the engine
    /// executes each rank's steps in program order — the indices are
    /// exactly the ones runtime reservation would hand out.
    fn prepare(&mut self, trace: &Trace) {
        let nprocs = trace.nprocs;
        let pairs = (nprocs as usize) * (nprocs as usize);
        self.len.clear();
        self.len.resize(pairs, 0);
        self.recv_next.clear();
        self.recv_next.resize(pairs, 0);
        self.parked_rank.clear();
        self.parked_rank.resize(pairs, NO_WAITER);
        self.parked_k.clear();
        self.parked_k.resize(pairs, 0);
        self.heap.clear();
        self.step_kind.clear();
        self.step_arg.clear();
        self.step_bytes.clear();
        self.step_k.clear();
        self.rank_step_base.clear();
        self.ev_compute.clear();
        self.rank_ev_base.clear();
        self.windows.truncate(nprocs as usize);
        self.windows.resize_with(nprocs as usize, Vec::new);
        for w in &mut self.windows {
            w.clear();
        }
        if self.sched.len() > SCHED_CACHE_CAP {
            self.sched.clear();
        }

        // Per-pair send counts accumulate shifted by one so the in-place
        // prefix sum below yields exclusive base offsets.
        self.base.clear();
        self.base.resize(pairs + 1, 0);

        macro_rules! step {
            ($kind:expr, $arg:expr, $bytes:expr, $k:expr) => {{
                self.step_kind.push($kind);
                self.step_arg.push($arg);
                self.step_bytes.push($bytes);
                self.step_k.push($k);
            }};
        }
        macro_rules! recv_step {
            ($from:expr, $me:expr) => {{
                let pair = $from * nprocs + $me;
                let k = self.recv_next[pair as usize];
                self.recv_next[pair as usize] += 1;
                step!(StepKind::Recv, pair, 0, k);
            }};
        }
        for (r, rank_trace) in trace.ranks.iter().enumerate() {
            let r = r as Rank;
            self.rank_step_base.push(self.step_kind.len());
            self.rank_ev_base.push(self.ev_compute.len());
            for ev in &rank_trace.events {
                self.ev_compute.push(ev.compute_before);
                match &ev.op {
                    MpiOp::Send { to, bytes } => {
                        self.base[(r * nprocs + *to) as usize + 1] += 1;
                        step!(StepKind::Send, *to, *bytes, 0);
                    }
                    MpiOp::Recv { from, .. } => recv_step!(*from, r),
                    MpiOp::Sendrecv {
                        to,
                        send_bytes,
                        from,
                        ..
                    } => {
                        self.base[(r * nprocs + *to) as usize + 1] += 1;
                        step!(StepKind::Send, *to, *send_bytes, 0);
                        recv_step!(*from, r);
                    }
                    MpiOp::Isend { to, bytes, req } => {
                        self.base[(r * nprocs + *to) as usize + 1] += 1;
                        step!(StepKind::IsendPost, *to, *bytes, *req);
                    }
                    MpiOp::Irecv { from, req, .. } => {
                        let pair = *from * nprocs + r;
                        let k = self.recv_next[pair as usize];
                        self.recv_next[pair as usize] += 1;
                        step!(StepKind::IrecvPost, pair, u64::from(*req), k);
                    }
                    MpiOp::Wait { req } => step!(StepKind::WaitReq, *req, 0, 0),
                    MpiOp::Waitall { reqs } => {
                        for &req in reqs {
                            step!(StepKind::WaitReq, req, 0, 0);
                        }
                    }
                    op => {
                        let key = sched_key(op, nprocs)
                            .expect("point-to-point ops are handled above");
                        self.sched.entry(key).or_insert_with(|| build_sched(op, nprocs));
                        let sched = &self.sched[&key];
                        let bytes = key.2;
                        let lo = sched.rank_base[r as usize] as usize;
                        let hi = sched.rank_base[r as usize + 1] as usize;
                        for i in lo..hi {
                            let peer = sched.peer[i];
                            if sched.send[i] {
                                self.base[(r * nprocs + peer) as usize + 1] += 1;
                                self.step_kind.push(StepKind::Send);
                                self.step_arg.push(peer);
                                self.step_bytes.push(bytes);
                                self.step_k.push(0);
                            } else {
                                let pair = peer * nprocs + r;
                                let k = self.recv_next[pair as usize];
                                self.recv_next[pair as usize] += 1;
                                self.step_kind.push(StepKind::Recv);
                                self.step_arg.push(pair);
                                self.step_bytes.push(0);
                                self.step_k.push(k);
                            }
                        }
                    }
                }
                step!(StepKind::OpDone, 0, 0, 0);
            }
        }
        self.rank_step_base.push(self.step_kind.len());
        self.rank_ev_base.push(self.ev_compute.len());
        for p in 0..pairs {
            self.base[p + 1] += self.base[p];
        }
        let total = self.base[pairs];
        self.times.clear();
        self.times.resize(total, SimTime::ZERO);
    }
}

/// The replay engine.
struct Replay<'a> {
    trace: &'a Trace,
    ann: Option<&'a TraceAnnotations>,
    params: SimParams,
    fabric: Fabric,
    ranks: Vec<RankState>,
    /// Arenas (arrivals, cursors, parked slots, heap), prepared for this
    /// trace and recycled across replays.
    scratch: &'a mut ReplayScratch,
    /// How many ranks are parked on missing messages.
    parked: usize,
    /// Fault drawing plan (None on a reliable fabric).
    faults: Option<FaultPlan>,
    /// Aggregate fault accounting.
    fault_stats: FaultStats,
}

/// Replay `trace` through the modelled network. Supplying `ann` turns on
/// the power-saving mechanism's effects (overheads, penalties, lane-off
/// windows); `None` replays the unmodified, power-unaware baseline.
///
/// Engine buffers come from a per-thread [`ReplayScratch`], so repeated
/// calls on one thread reuse their allocations; see
/// [`replay_with_scratch`] to manage the scratch yourself.
pub fn replay(
    trace: &Trace,
    ann: Option<&TraceAnnotations>,
    params: &SimParams,
    opts: &ReplayOptions,
) -> Result<SimResult, ReplayError> {
    thread_local! {
        static SCRATCH: RefCell<ReplayScratch> = RefCell::new(ReplayScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => replay_with_scratch(trace, ann, params, opts, &mut scratch),
        // Re-entrant call (replay invoked from inside a replay-owned
        // callback on this thread): fall back to a throwaway scratch.
        Err(_) => replay_with_scratch(trace, ann, params, opts, &mut ReplayScratch::new()),
    })
}

/// [`replay`] with an explicitly managed buffer arena. The scratch is
/// resized for `trace` and left ready for the next call; results are
/// identical whether the scratch is fresh or recycled.
pub fn replay_with_scratch(
    trace: &Trace,
    ann: Option<&TraceAnnotations>,
    params: &SimParams,
    opts: &ReplayOptions,
    scratch: &mut ReplayScratch,
) -> Result<SimResult, ReplayError> {
    let n = trace.nprocs;
    if n < 1 {
        return Err(ReplayError::EmptyTrace);
    }
    if let Some(a) = ann {
        if a.ranks.len() != n as usize {
            return Err(ReplayError::AnnotationRankMismatch {
                trace: n,
                annotated: a.ranks.len(),
            });
        }
        for (r, ra) in a.ranks.iter().enumerate() {
            let calls = trace.ranks[r].call_count();
            if ra.overhead.len() != calls {
                return Err(ReplayError::AnnotationLengthMismatch {
                    rank: r,
                    calls,
                    annotated: ra.overhead.len(),
                });
            }
        }
    }
    let faults = match &opts.faults {
        Some(cfg) => {
            cfg.validate().map_err(ReplayError::InvalidFaultConfig)?;
            (!cfg.is_quiet()).then(|| FaultPlan::new(cfg, n))
        }
        None => None,
    };

    scratch.prepare(trace);
    let ranks = (0..n)
        .map(|r| RankState {
            t: SimTime::ZERO,
            ev: 0,
            cur: scratch.rank_step_base[r as usize],
            in_event: false,
            reqs: FxHashMap::default(),
            next_directive: 0,
            pending_sleep: None,
            power: LinkPowerTracker::new(opts.record_timelines),
            done: false,
        })
        .collect();
    let mut engine = Replay {
        trace,
        ann,
        params: params.clone(),
        fabric: Fabric::new(params.clone(), n, opts.seed),
        ranks,
        scratch,
        parked: 0,
        faults,
        fault_stats: FaultStats::default(),
    };

    for r in 0..n {
        engine.scratch.heap.push(Reverse((SimTime::ZERO, r)));
    }
    engine.run()?;

    // Batched power pass: the timing loop only buffered each link's
    // resolved sleep windows; advance every link's power timeline in one
    // slice call now that the run is over.
    for (state, windows) in engine.ranks.iter_mut().zip(engine.scratch.windows.iter()) {
        state.power.apply_windows(&engine.params, windows);
    }

    let exec = engine
        .ranks
        .iter()
        .map(|s| s.t)
        .max()
        .unwrap_or(SimTime::ZERO);
    Ok(SimResult {
        exec_time: exec.since(SimTime::ZERO),
        rank_finish: engine.ranks.iter().map(|s| s.t).collect(),
        link_low: engine.ranks.iter().map(|s| s.power.low_time).collect(),
        link_rate: engine.ranks.iter().map(|s| s.power.rate_time).collect(),
        link_deep: engine.ranks.iter().map(|s| s.power.deep_time).collect(),
        link_transition: engine
            .ranks
            .iter()
            .map(|s| s.power.transition_time)
            .collect(),
        link_sleeps: engine.ranks.iter().map(|s| s.power.sleeps).collect(),
        timelines: opts.record_timelines.then(|| {
            engine
                .ranks
                .iter()
                .map(|s| s.power.timeline.clone().expect("recording enabled"))
                .collect()
        }),
        fabric: engine.fabric.stats(),
        low_power_fraction: params.low_power_fraction,
        rate_power_fraction: params.rate_power_fraction,
        deep_power_fraction: params.deep_power_fraction,
        faults: engine.fault_stats,
    })
}

impl<'a> Replay<'a> {
    fn pair(&self, src: Rank, dst: Rank) -> u32 {
        src * self.trace.nprocs + dst
    }

    fn run(&mut self) -> Result<(), ReplayError> {
        while let Some(Reverse((_, r))) = self.scratch.heap.pop() {
            if let Advance::Run(t) = self.advance_rank(r) {
                self.scratch.heap.push(Reverse((t, r)));
            }
        }
        if let Some((r, s)) = self.ranks.iter().enumerate().find(|(_, s)| !s.done) {
            return Err(ReplayError::Deadlock {
                rank: r,
                event: s.ev,
                parked: self.parked,
            });
        }
        Ok(())
    }

    /// Advance rank `r` as far as it can go in one scheduling quantum:
    /// until it parks, finishes, or is preempted before a fabric send.
    ///
    /// Only *fabric-mutating* steps (`Send` / `IsendPost`) are gated on
    /// the rank's clock being minimal among runnable ranks — channel
    /// occupancy, pair sequence numbers and contention stats depend on
    /// the global order of `Fabric::transfer` calls. Everything else
    /// commutes with other ranks and runs eagerly without a heap round
    /// trip: event expansion, compute, sleep-window buffering and
    /// directive resolution are rank-local (misfire draws come from the
    /// rank's own per-link fault stream, so their order per link is the
    /// rank's program order either way), and arrival reads (`Recv` /
    /// `WaitReq`) are order-independent — a delivered arrival time never
    /// changes, and reading "too early" just parks the rank until the
    /// sender wakes it at the exact same clock.
    fn advance_rank(&mut self, r: Rank) -> Advance {
        let ri = r as usize;
        loop {
            if !self.ranks[ri].in_event {
                if !self.expand_next_event(r) {
                    return Advance::Blocked; // rank finished
                }
                continue;
            }
            let cur = self.ranks[ri].cur;
            let kind = self.scratch.step_kind[cur];
            if matches!(kind, StepKind::Send | StepKind::IsendPost) {
                let t = self.ranks[ri].t;
                if let Some(&Reverse(top)) = self.scratch.heap.peek() {
                    if top < (t, r) {
                        // Another rank is earlier: yield before touching
                        // the fabric.
                        return Advance::Run(t);
                    }
                }
            }
            match self.execute_step(r, cur, kind) {
                StepOutcome::Ran | StepOutcome::EventDone => {}
                StepOutcome::Parked { pair, k } => {
                    // Only the pair's destination rank ever receives on
                    // it, so the slot is necessarily free.
                    let p = pair as usize;
                    debug_assert_eq!(self.scratch.parked_rank[p], NO_WAITER);
                    self.scratch.parked_rank[p] = r;
                    self.scratch.parked_k[p] = k;
                    self.parked += 1;
                    return Advance::Blocked;
                }
            }
        }
    }

    /// Enter the next trace event of rank `r`: apply compute, overhead,
    /// penalty and sleep resolution, and point the cursor at the event's
    /// pre-built steps. Returns `false` when the rank's trace is
    /// exhausted (the rank is then finished).
    fn expand_next_event(&mut self, r: Rank) -> bool {
        let ri = r as usize;
        let ev = self.ranks[ri].ev;
        let ev_base = self.scratch.rank_ev_base[ri];
        let n_events = self.scratch.rank_ev_base[ri + 1] - ev_base;
        if ev >= n_events {
            // Trailing compute, final sleep resolution, done.
            let misfire = match self.ranks[ri].pending_sleep {
                Some((_, _, kind)) => self
                    .faults
                    .as_mut()
                    .is_some_and(|plan| plan.wake_misfires_at(ri, kind)),
                None => false,
            };
            let state = &mut self.ranks[ri];
            if !state.done {
                let t = self
                    .params
                    .compute_end(state.t, self.trace.ranks[ri].final_compute);
                state.t = t;
                if let Some((t0, timer, kind)) = state.pending_sleep.take() {
                    // No later demand exists; the run's end bounds the
                    // window. A misfire here charges no stall (the rank
                    // is done) but still voids the wake timer.
                    let timer = if misfire {
                        self.fault_stats.wake_misfires += 1;
                        None
                    } else {
                        Some(timer)
                    };
                    self.scratch.windows[ri].push(SleepWindow {
                        t0,
                        timer,
                        t_want: t,
                        kind,
                    });
                }
                state.done = true;
            }
            return false;
        }

        let (overhead, penalty) = match self.ann {
            Some(a) => (a.ranks[ri].overhead[ev], a.ranks[ri].penalty[ev]),
            None => (SimDuration::ZERO, SimDuration::ZERO),
        };
        let compute = self.scratch.ev_compute[ev_base + ev];

        // Compute burst (+ mechanism overhead), then the rank wants the
        // network: resolve any pending sleep against that demand, then
        // serve the reactivation stall. Window *accounting* is buffered
        // ([`ReplayScratch::windows`]) and applied after the run.
        {
            let misfire = match self.ranks[ri].pending_sleep {
                Some((_, _, kind)) => self
                    .faults
                    .as_mut()
                    .is_some_and(|plan| plan.wake_misfires_at(ri, kind)),
                None => false,
            };
            let state = &mut self.ranks[ri];
            state.t = self.params.compute_end(state.t, compute + overhead);
            match state.pending_sleep.take() {
                Some((t0, _timer, kind)) if misfire => {
                    // Misfired wake timer: lanes stay low until this
                    // demand, and the rank pays the full reactivation
                    // time *instead of* the runtime's predicted penalty
                    // (the reactive wake replaces the planned one).
                    self.scratch.windows[ri].push(SleepWindow {
                        t0,
                        timer: None,
                        t_want: state.t,
                        kind,
                    });
                    let react = match kind {
                        SleepKind::Wrps => self.params.t_react,
                        SleepKind::Rate => self.params.rate_t_react,
                        SleepKind::Deep => self.params.deep_t_react,
                    };
                    state.t += react;
                    self.fault_stats.wake_misfires += 1;
                    self.fault_stats.misfire_stall += react;
                }
                Some((t0, timer, kind)) => {
                    self.scratch.windows[ri].push(SleepWindow {
                        t0,
                        timer: Some(timer),
                        t_want: state.t,
                        kind,
                    });
                    state.t += penalty;
                }
                None => state.t += penalty,
            }
        }

        // The event's steps were laid out by `prepare`. A non-blocking
        // receive is pure library bookkeeping and posts here, at
        // expansion, leaving its `OpDone` as the only scheduled step.
        self.ranks[ri].in_event = true;
        let cur = self.ranks[ri].cur;
        if self.scratch.step_kind[cur] == StepKind::IrecvPost {
            let pair = self.scratch.step_arg[cur];
            let req = self.scratch.step_bytes[cur] as u32;
            let k = self.scratch.step_k[cur];
            self.ranks[ri].reqs.insert(req, Req::Recv { pair, k });
            self.ranks[ri].t += POST_OVERHEAD;
            self.ranks[ri].cur = cur + 1;
        }
        true
    }

    /// Execute the micro step at rank `r`'s cursor (`cur` and `kind`
    /// come from the caller, which already loaded them to decide
    /// whether to gate on the heap).
    fn execute_step(&mut self, r: Rank, cur: usize, kind: StepKind) -> StepOutcome {
        let ri = r as usize;
        match kind {
            StepKind::Send => self.execute_send_run(r),
            StepKind::IsendPost => {
                let to = self.scratch.step_arg[cur];
                let bytes = self.scratch.step_bytes[cur];
                let req = self.scratch.step_k[cur];
                self.ranks[ri].cur = cur + 1;
                let t0 = self.ranks[ri].t;
                let (t, extra) = self.draw_send_fault(ri, t0, bytes);
                self.deliver(r, to, t, bytes, extra);
                let done = self.fabric.inject_done(t, bytes) + extra;
                self.ranks[ri].reqs.insert(req, Req::Send { done });
                self.ranks[ri].t += POST_OVERHEAD;
                StepOutcome::Ran
            }
            StepKind::Recv => {
                let pair = self.scratch.step_arg[cur];
                let k = self.scratch.step_k[cur];
                match self.arrival(pair, k) {
                    Some(at) => {
                        self.ranks[ri].cur = cur + 1;
                        self.ranks[ri].t = self.ranks[ri].t.max(at);
                        StepOutcome::Ran
                    }
                    None => StepOutcome::Parked { pair, k },
                }
            }
            StepKind::WaitReq => {
                let req = self.scratch.step_arg[cur];
                let handle = *self.ranks[ri]
                    .reqs
                    .get(&req)
                    .expect("wait on unknown request (trace validated?)");
                match handle {
                    Req::Send { done } => {
                        self.ranks[ri].cur = cur + 1;
                        self.ranks[ri].reqs.remove(&req);
                        self.ranks[ri].t = self.ranks[ri].t.max(done);
                        StepOutcome::Ran
                    }
                    Req::Recv { pair, k } => match self.arrival(pair, k) {
                        Some(at) => {
                            self.ranks[ri].cur = cur + 1;
                            self.ranks[ri].reqs.remove(&req);
                            self.ranks[ri].t = self.ranks[ri].t.max(at);
                            StepOutcome::Ran
                        }
                        None => StepOutcome::Parked { pair, k },
                    },
                }
            }
            StepKind::IrecvPost => unreachable!("IrecvPost is consumed at event expansion"),
            StepKind::OpDone => {
                self.ranks[ri].cur = cur + 1;
                self.ranks[ri].in_event = false;
                let ev = self.ranks[ri].ev;
                self.ranks[ri].ev += 1;
                if let Some(a) = self.ann {
                    let ra = &a.ranks[ri];
                    let di = self.ranks[ri].next_directive;
                    if di < ra.directives.len() && ra.directives[di].after_event == ev {
                        let state = &mut self.ranks[ri];
                        state.next_directive += 1;
                        // The lanes shut down when the call completes
                        // (plus any reactive-policy delay); a window still
                        // in its wake transition pushes the start forward
                        // (the tracker clamps to its floor).
                        state.pending_sleep = Some((
                            state.t + ra.directives[di].delay,
                            ra.directives[di].timer,
                            ra.directives[di].kind,
                        ));
                    }
                }
                StepOutcome::EventDone
            }
        }
    }

    /// Execute the send at the cursor plus any directly following sends
    /// of the same event, for as long as this rank stays the
    /// minimum-clock runnable rank — the batched link-advancement fast
    /// path. All fault draws go through one borrowed
    /// [`crate::faults::LinkRun`], in exactly the order the single-step
    /// path would draw them.
    fn execute_send_run(&mut self, r: Rank) -> StepOutcome {
        let ri = r as usize;
        let nprocs = self.trace.nprocs;
        let mut t = self.ranks[ri].t;
        let mut cur = self.ranks[ri].cur;
        let mut fault_run = self.faults.as_mut().map(|plan| plan.link_run(ri));
        loop {
            let to = self.scratch.step_arg[cur];
            let bytes = self.scratch.step_bytes[cur];
            let (t_inj, extra) = match &mut fault_run {
                Some(run) => {
                    let fault = run.send_fault(t);
                    let mut t_inj = t;
                    if fault.flapped {
                        self.fault_stats.link_flaps += 1;
                        self.fault_stats.flap_delay += fault.flap_delay;
                        t_inj += fault.flap_delay;
                    }
                    let extra = if fault.degraded {
                        let extra = FaultPlan::degraded_extra(&self.params, bytes);
                        self.fault_stats.degraded_sends += 1;
                        self.fault_stats.degraded_extra += extra;
                        extra
                    } else {
                        SimDuration::ZERO
                    };
                    (t_inj, extra)
                }
                None => (t, SimDuration::ZERO),
            };
            // Inject and wake any parked waiter (`deliver`, inlined: the
            // borrowed fault run pins `self.faults`, but every field it
            // touches is disjoint).
            let arrival = self.fabric.transfer(t_inj, r, to, bytes) + extra;
            let p = (r * nprocs + to) as usize;
            let k = self.scratch.len[p];
            self.scratch.times[self.scratch.base[p] + k as usize] = arrival;
            self.scratch.len[p] = k + 1;
            if self.scratch.parked_rank[p] != NO_WAITER && self.scratch.parked_k[p] == k {
                let w = self.scratch.parked_rank[p];
                self.scratch.parked_rank[p] = NO_WAITER;
                self.parked -= 1;
                let tw = self.ranks[w as usize].t;
                self.scratch.heap.push(Reverse((tw, w)));
            }
            t = self.fabric.inject_done(t_inj, bytes) + extra;
            cur += 1;
            // Keep going only into another send (`OpDone` terminates every
            // event, so `cur` is in bounds), and only while the scheduler
            // would hand the quantum straight back to this rank anyway.
            if self.scratch.step_kind[cur] != StepKind::Send {
                break;
            }
            if let Some(&Reverse(top)) = self.scratch.heap.peek() {
                if top < (t, r) {
                    break;
                }
            }
        }
        self.ranks[ri].t = t;
        self.ranks[ri].cur = cur;
        StepOutcome::Ran
    }

    fn arrival(&self, pair: u32, k: u32) -> Option<SimTime> {
        let p = pair as usize;
        (k < self.scratch.len[p]).then(|| self.scratch.times[self.scratch.base[p] + k as usize])
    }

    /// Draw fault effects for a send leaving rank `link` at `t`: returns
    /// the (possibly flap-delayed) injection time and the extra
    /// serialization charged by a stuck-at-1X degraded link.
    fn draw_send_fault(&mut self, link: usize, t: SimTime, bytes: u64) -> (SimTime, SimDuration) {
        let Some(plan) = self.faults.as_mut() else {
            return (t, SimDuration::ZERO);
        };
        let fault = plan.send_fault(link, t);
        let mut t = t;
        if fault.flapped {
            self.fault_stats.link_flaps += 1;
            self.fault_stats.flap_delay += fault.flap_delay;
            t += fault.flap_delay;
        }
        let extra = if fault.degraded {
            let extra = FaultPlan::degraded_extra(&self.params, bytes);
            self.fault_stats.degraded_sends += 1;
            self.fault_stats.degraded_extra += extra;
            extra
        } else {
            SimDuration::ZERO
        };
        (t, extra)
    }

    /// Inject a message and wake any rank parked on it. `extra` is fault
    /// surcharge added to the arrival (degraded-link serialization).
    fn deliver(&mut self, src: Rank, dst: Rank, t: SimTime, bytes: u64, extra: SimDuration) {
        let arrival = self.fabric.transfer(t, src, dst, bytes) + extra;
        let p = self.pair(src, dst) as usize;
        let k = self.scratch.len[p];
        self.scratch.times[self.scratch.base[p] + k as usize] = arrival;
        self.scratch.len[p] = k + 1;
        if self.scratch.parked_rank[p] != NO_WAITER && self.scratch.parked_k[p] == k {
            let w = self.scratch.parked_rank[p];
            self.scratch.parked_rank[p] = NO_WAITER;
            self.parked -= 1;
            let t = self.ranks[w as usize].t;
            self.scratch.heap.push(Reverse((t, w)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::{annotate_trace, PowerConfig};
    use ibp_trace::TraceBuilder;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn ping_pong(iters: u32, bytes: u64) -> Trace {
        let mut b = TraceBuilder::new("pingpong", 2);
        for _ in 0..iters {
            b.compute(0, us(100));
            b.op(0, MpiOp::Send { to: 1, bytes });
            b.op(0, MpiOp::Recv { from: 1, bytes });
            b.compute(1, us(100));
            b.op(1, MpiOp::Recv { from: 0, bytes });
            b.op(1, MpiOp::Send { to: 0, bytes });
        }
        b.build()
    }

    #[test]
    fn ping_pong_timing() {
        let t = ping_pong(1, 2048);
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // One round trip after 100 µs compute each: ~100 + 2×(1 µs + hops
        // + 0.41 µs) ≈ 103 µs.
        let exec = r.exec_time.as_us_f64();
        assert!((102.0..106.0).contains(&exec), "exec {exec}");
        assert_eq!(r.fabric.messages, 2);
    }

    #[test]
    fn compute_only_trace_sums_compute() {
        let mut b = TraceBuilder::new("compute", 2);
        b.compute(0, us(500));
        b.op(0, MpiOp::Barrier);
        b.compute(1, us(500));
        b.op(1, MpiOp::Barrier);
        b.compute(0, us(200));
        b.compute(1, us(100));
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // 500 µs + barrier (µs-scale) + 200 µs trailing.
        let exec = r.exec_time.as_us_f64();
        assert!((700.0..705.0).contains(&exec), "exec {exec}");
    }

    #[test]
    fn imbalance_propagates_through_barrier() {
        let mut b = TraceBuilder::new("imb", 4);
        for r in 0..4u32 {
            b.compute(r, us(100 * (u64::from(r) + 1))); // 100..400 µs
            b.op(r, MpiOp::Barrier);
            b.compute(r, us(50));
        }
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // Everyone leaves the barrier after the slowest (400 µs) rank.
        let exec = r.exec_time.as_us_f64();
        assert!((450.0..460.0).contains(&exec), "exec {exec}");
        for f in &r.rank_finish {
            assert!(f.as_us_f64() >= 450.0);
        }
    }

    #[test]
    fn nonblocking_overlap_beats_blocking() {
        // Exchange with Isend/Irecv + Waitall vs sequential Send/Recv
        // ordering that serialises.
        let bytes = 1 << 20; // 1 MB ≈ 210 µs serialization
        let mut b = TraceBuilder::new("nb", 2);
        for r in 0..2u32 {
            let peer = 1 - r;
            let r1 = b.irecv(r, peer, bytes);
            let r2 = b.isend(r, peer, bytes);
            b.op(r, MpiOp::Waitall { reqs: vec![r1, r2] });
        }
        let nb = replay(&b.build(), None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");

        // One serialization (~210 µs) suffices: the two transfers overlap.
        let one_serial = SimParams::paper().serialize(bytes).as_us_f64();
        assert!(
            nb.exec_time.as_us_f64() < 1.2 * one_serial,
            "non-blocking exchange failed to overlap: {}",
            nb.exec_time
        );

        let mut b = TraceBuilder::new("blk", 2);
        // Serialised ping-pong: rank 1 receives before it sends, so its
        // send cannot start until rank 0's full message has arrived.
        b.op(0, MpiOp::Send { to: 1, bytes });
        b.op(0, MpiOp::Recv { from: 1, bytes });
        b.op(1, MpiOp::Recv { from: 0, bytes });
        b.op(1, MpiOp::Send { to: 0, bytes });
        let blk = replay(&b.build(), None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");

        assert!(
            blk.exec_time.as_us_f64() > 1.8 * one_serial,
            "serialised ping-pong should need two serializations: {}",
            blk.exec_time
        );
        assert!(nb.exec_time < blk.exec_time);
    }

    #[test]
    fn contention_extends_execution() {
        // Many ranks all sending large messages to rank 0 at once.
        let bytes = 1 << 20;
        let mut b = TraceBuilder::new("incast", 8);
        for r in 1..8u32 {
            b.op(r, MpiOp::Send { to: 0, bytes });
        }
        for r in 1..8u32 {
            b.op(0, MpiOp::Recv { from: r, bytes });
        }
        let t = b.build();
        let r = replay(&t, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        // 7 MB must serialise through rank 0's host downlink: ≥ 7 × 210 µs.
        assert!(
            r.exec_time >= us(1400),
            "incast too fast: {}",
            r.exec_time
        );
        assert!(r.fabric.contended > 0);
    }

    #[test]
    fn deterministic_replay() {
        let t = ping_pong(50, 4096);
        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let a = replay(&t, None, &p, &o).expect("replay");
        let b = replay(&t, None, &p, &o).expect("replay");
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.rank_finish, b.rank_finish);
    }

    #[test]
    fn recycled_scratch_matches_fresh_scratch() {
        // Run traces of *different* shapes and sizes through one scratch;
        // every result must match a replay on a brand-new scratch.
        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let mut big = TraceBuilder::new("mix", 6);
        for r in 0..6u32 {
            b_round(&mut big, r);
        }
        let traces = [ping_pong(30, 4096), big.build(), ping_pong(2, 64)];
        let mut scratch = ReplayScratch::new();
        for t in &traces {
            let recycled = replay_with_scratch(t, None, &p, &o, &mut scratch).expect("replay");
            let fresh = replay_with_scratch(t, None, &p, &o, &mut ReplayScratch::new())
                .expect("replay");
            assert_eq!(recycled.exec_time, fresh.exec_time);
            assert_eq!(recycled.rank_finish, fresh.rank_finish);
            assert_eq!(recycled.fabric.messages, fresh.fabric.messages);
        }
    }

    fn b_round(b: &mut TraceBuilder, r: u32) {
        b.compute(r, us(50));
        b.op(r, MpiOp::Allreduce { bytes: 64 });
        b.op(r, MpiOp::Alltoall { bytes: 256 });
        b.op(r, MpiOp::Barrier);
    }

    #[test]
    fn arrival_arena_is_sized_exactly() {
        // After a run, every pair's delivered count must equal its
        // precounted capacity (base[p+1] - base[p]): collectives included.
        let mut b = TraceBuilder::new("exact", 5);
        for r in 0..5u32 {
            b.op(r, MpiOp::Allreduce { bytes: 8 });
            b.op(r, MpiOp::Allgather { bytes: 128 });
            b.op(r, MpiOp::Bcast { root: 3, bytes: 32 });
            b.op(
                r,
                MpiOp::Sendrecv {
                    to: (r + 1) % 5,
                    send_bytes: 512,
                    from: (r + 4) % 5,
                    recv_bytes: 512,
                },
            );
        }
        let t = b.build();
        let mut scratch = ReplayScratch::new();
        replay_with_scratch(&t, None, &SimParams::paper(), &ReplayOptions::default(), &mut scratch)
            .expect("replay");
        for p in 0..25 {
            let cap = scratch.base[p + 1] - scratch.base[p];
            assert_eq!(scratch.len[p] as usize, cap, "pair {p}");
            assert_eq!(scratch.recv_next[p] as usize, cap, "pair {p} recvs");
            assert_eq!(scratch.parked_rank[p], NO_WAITER, "pair {p} waiter left");
        }
    }

    #[test]
    fn annotated_replay_accumulates_low_power() {
        // A predictable 2-rank iterative pattern.
        let mut b = TraceBuilder::new("iter", 2);
        for _ in 0..40 {
            for r in 0..2u32 {
                b.compute(r, us(500));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: 1 - r,
                        send_bytes: 4096,
                        from: 1 - r,
                        recv_bytes: 4096,
                    },
                );
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        let t = b.build();
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&t, &cfg);
        assert!(ann.total_directives() > 0);

        let p = SimParams::paper();
        let o = ReplayOptions::default();
        let baseline = replay(&t, None, &p, &o).expect("replay");
        let managed = replay(&t, Some(&ann), &p, &o).expect("replay");

        assert!(baseline.link_low.iter().all(|l| l.is_zero()));
        assert!(managed.link_low.iter().all(|l| !l.is_zero()));
        let saving = managed.power_saving_pct();
        assert!(saving > 10.0 && saving < 57.0, "saving {saving}");
        // Overheads make the managed run slightly slower, but only
        // slightly (the pattern is perfectly predictable).
        let slow = managed.slowdown_pct(&baseline);
        assert!((0.0..2.0).contains(&slow), "slowdown {slow}");
    }

    #[test]
    fn timelines_recorded_when_requested() {
        let t = ping_pong(3, 1024);
        let o = ReplayOptions {
            record_timelines: true,
            ..ReplayOptions::default()
        };
        let r = replay(&t, None, &SimParams::paper(), &o).expect("replay");
        let tls = r.timelines.expect("timelines requested");
        assert_eq!(tls.len(), 2);
    }

    #[test]
    fn unmatched_recv_reports_deadlock_error() {
        // Hand-build an invalid trace (skipping validate) where rank 0
        // waits for a message nobody sends.
        let mut b = TraceBuilder::new("bad", 2);
        b.op(0, MpiOp::Recv { from: 1, bytes: 64 });
        let t = b.build(); // validate() would fail; replay must detect too
        let err = replay(&t, None, &SimParams::paper(), &ReplayOptions::default())
            .expect_err("deadlock expected");
        match err {
            ReplayError::Deadlock { rank, .. } => assert_eq!(rank, 0),
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn empty_trace_is_a_typed_error() {
        let t = TraceBuilder::new("none", 0).build();
        let err = replay(&t, None, &SimParams::paper(), &ReplayOptions::default())
            .expect_err("empty trace");
        assert_eq!(err, ReplayError::EmptyTrace);
    }

    #[test]
    fn annotation_rank_mismatch_is_a_typed_error() {
        let two = ping_pong(1, 512);
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&two, &cfg);
        let mut b = TraceBuilder::new("three", 3);
        b.compute(0, us(10));
        let three = b.build();
        let err = replay(&three, Some(&ann), &SimParams::paper(), &ReplayOptions::default())
            .expect_err("rank mismatch");
        assert_eq!(
            err,
            ReplayError::AnnotationRankMismatch {
                trace: 3,
                annotated: 2
            }
        );
    }

    #[test]
    fn annotation_length_mismatch_is_a_typed_error() {
        let t = ping_pong(2, 512);
        let cfg = PowerConfig::paper(us(20), 0.10);
        let mut ann = annotate_trace(&t, &cfg);
        ann.ranks[1].overhead.pop();
        let err = replay(&t, Some(&ann), &SimParams::paper(), &ReplayOptions::default())
            .expect_err("length mismatch");
        match err {
            ReplayError::AnnotationLengthMismatch { rank, .. } => assert_eq!(rank, 1),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn invalid_fault_config_is_a_typed_error() {
        let t = ping_pong(1, 512);
        let opts = ReplayOptions {
            faults: Some(FaultConfig {
                flap_prob: 2.0,
                ..FaultConfig::quiet(1)
            }),
            ..ReplayOptions::default()
        };
        let err = replay(&t, None, &SimParams::paper(), &opts).expect_err("bad config");
        assert!(matches!(err, ReplayError::InvalidFaultConfig(_)));
    }

    #[test]
    fn quiet_faults_match_fault_free_exactly() {
        let t = ping_pong(20, 4096);
        let p = SimParams::paper();
        let clean = replay(&t, None, &p, &ReplayOptions::default()).expect("replay");
        let quiet = ReplayOptions {
            faults: Some(FaultConfig::quiet(0xD1C0)),
            ..ReplayOptions::default()
        };
        let faulted = replay(&t, None, &p, &quiet).expect("replay");
        assert_eq!(clean.exec_time, faulted.exec_time);
        assert_eq!(faulted.faults, FaultStats::default());
    }

    #[test]
    fn faults_slow_execution_and_are_counted() {
        let t = ping_pong(50, 4096);
        let p = SimParams::paper();
        let clean = replay(&t, None, &p, &ReplayOptions::default()).expect("replay");
        let stormy = ReplayOptions {
            faults: Some(FaultConfig::with_rate(0xD1C0, 100.0)),
            ..ReplayOptions::default()
        };
        let faulted = replay(&t, None, &p, &stormy).expect("replay");
        assert!(faulted.faults.link_flaps > 0, "{:?}", faulted.faults);
        assert!(faulted.exec_time > clean.exec_time);
        // The aggregate charge bounds the observed slowdown.
        let gap = faulted.exec_time.saturating_sub(clean.exec_time);
        assert!(gap <= faulted.faults.total_charged());
    }

    #[test]
    fn misfires_extend_low_power_and_charge_react() {
        // Predictable pattern → directives; 100% misfire rate.
        let mut b = TraceBuilder::new("iter", 2);
        for _ in 0..40 {
            for r in 0..2u32 {
                b.compute(r, us(500));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: 1 - r,
                        send_bytes: 4096,
                        from: 1 - r,
                        recv_bytes: 4096,
                    },
                );
            }
        }
        let t = b.build();
        let cfg = PowerConfig::paper(us(20), 0.10);
        let ann = annotate_trace(&t, &cfg);
        assert!(ann.total_directives() > 0);

        let p = SimParams::paper();
        let managed = replay(&t, Some(&ann), &p, &ReplayOptions::default()).expect("replay");
        let misfiring = ReplayOptions {
            faults: Some(FaultConfig {
                wake_misfire_prob: 1.0,
                ..FaultConfig::quiet(9)
            }),
            ..ReplayOptions::default()
        };
        let faulted = replay(&t, Some(&ann), &p, &misfiring).expect("replay");
        assert!(faulted.faults.wake_misfires > 0);
        // Every misfire resolved against a demand stalls exactly T_react
        // (trailing-window misfires charge nothing; there are at most
        // nprocs of them).
        assert!(!faulted.faults.misfire_stall.is_zero());
        let cap = SimDuration::from_ns(p.t_react.as_ns() * faulted.faults.wake_misfires);
        assert!(faulted.faults.misfire_stall <= cap);
        // Lanes stay down until demand → at least as much low-power time.
        let low_ok: SimDuration = managed.link_low.iter().copied().sum();
        let low_bad: SimDuration = faulted.link_low.iter().copied().sum();
        assert!(low_bad >= low_ok, "{low_bad} < {low_ok}");
        assert!(faulted.exec_time >= managed.exec_time);
    }
}
