//! Link power states and per-link power accounting.
//!
//! Each rank's host link (HCA ↔ leaf-switch port) is driven by the lane
//! directives the runtime issued: after the anchoring MPI call completes,
//! the three inactive lanes transition off (`T_react`, billed at full
//! power, per the paper's assumption for the switching mode), sit in
//! low-power 1X mode (43% of nominal draw), and transition back on when
//! the HCA timer fires — or earlier, on demand, when the next MPI call
//! wants the network before the timer.

use crate::config::SimParams;
use ibp_core::SleepKind;
use ibp_simcore::{SimDuration, SimTime, StateTimeline};
use serde::{Deserialize, Serialize};

/// Power state of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkPower {
    /// All four lanes active (nominal draw).
    Full,
    /// One lane active, three off (WRPS 1X mode, 43% of nominal).
    Low,
    /// All four lanes at the lowest signalling rate (ladder middle
    /// rung, ~25% draw).
    Rate,
    /// Switch buffers/crossbar down too (§VI deep sleep, ~10% draw).
    Deep,
    /// Lanes shifting between modes (billed at full power).
    Transition,
}

impl LinkPower {
    /// Relative power draw of the state (rate/deep floors at their
    /// standard-ladder values; see [`LinkPower::relative_draw_in`] for
    /// parameter-driven accounting).
    #[inline]
    #[must_use]
    pub fn relative_draw(self, low_fraction: f64) -> f64 {
        match self {
            LinkPower::Full | LinkPower::Transition => 1.0,
            LinkPower::Low => low_fraction,
            LinkPower::Rate => crate::config::RATE_POWER_FRACTION,
            LinkPower::Deep => crate::config::DEEP_POWER_FRACTION,
        }
    }

    /// Relative power draw of the state under a parameter set.
    #[inline]
    #[must_use]
    pub fn relative_draw_in(self, params: &SimParams) -> f64 {
        match self {
            LinkPower::Full | LinkPower::Transition => 1.0,
            LinkPower::Low => params.low_power_fraction,
            LinkPower::Rate => params.rate_power_fraction,
            LinkPower::Deep => params.deep_power_fraction,
        }
    }

    /// The state a link is in while a runtime's sleep directive is
    /// outstanding: no pending sleep means all lanes up; a WRPS sleep
    /// is the 1X low-power mode; a rate sleep keeps all lanes up at the
    /// lowest signalling rate; a deep sleep powers the port down.
    /// This is the readout `ibpower stat`/`top` render per session.
    #[must_use]
    pub fn from_pending_sleep(pending: Option<SleepKind>) -> LinkPower {
        match pending {
            None => LinkPower::Full,
            Some(SleepKind::Wrps) => LinkPower::Low,
            Some(SleepKind::Rate) => LinkPower::Rate,
            Some(SleepKind::Deep) => LinkPower::Deep,
        }
    }

    /// Active lanes in this state (the paper's links are 4X). Rate
    /// reduction keeps every lane up — only the signalling rate drops.
    #[must_use]
    pub fn lane_width(self) -> u8 {
        match self {
            LinkPower::Full | LinkPower::Transition | LinkPower::Rate => 4,
            LinkPower::Low => 1,
            LinkPower::Deep => 0,
        }
    }

    /// Signalling rate at this state, Gb/s, for the paper's QDR links
    /// (see [`LinkPower::speed_gbps_for`] for other generations).
    #[must_use]
    pub fn speed_gbps(self) -> f64 {
        self.speed_gbps_for(crate::genlink::IbGeneration::Qdr)
    }

    /// Signalling rate at this state for a link generation, Gb/s:
    /// width reduction keeps the per-lane rate on one lane, rate
    /// reduction keeps all lanes at a quarter of the per-lane rate
    /// (QDR's rate rung is SDR signalling), deep sleep carries nothing.
    #[must_use]
    pub fn speed_gbps_for(self, generation: crate::genlink::IbGeneration) -> f64 {
        match self {
            LinkPower::Full | LinkPower::Transition => generation.link_gbps(),
            LinkPower::Low => generation.per_lane_gbps(),
            LinkPower::Rate => generation.link_gbps() / 4.0,
            LinkPower::Deep => 0.0,
        }
    }

    /// `ibstat`-style state label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LinkPower::Full => "Full",
            LinkPower::Low => "Low",
            LinkPower::Rate => "Rate",
            LinkPower::Deep => "Deep",
            LinkPower::Transition => "Trans",
        }
    }
}

/// One resolved sleep window, ready for batched application — see
/// [`LinkPowerTracker::apply_windows`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SleepWindow {
    /// When the lanes were directed to shut down.
    pub t0: SimTime,
    /// Programmed HCA wake timer; `None` models a misfired timer (only
    /// the demand at `t_want` wakes the lanes).
    pub timer: Option<SimDuration>,
    /// When the rank next wanted the network.
    pub t_want: SimTime,
    /// Sleep depth.
    pub kind: SleepKind,
}

/// Power bookkeeping for one host link.
#[derive(Debug, Clone)]
pub struct LinkPowerTracker {
    /// Optional full state timeline (for Fig. 6-style rendering).
    pub timeline: Option<StateTimeline<LinkPower>>,
    /// Accumulated time in WRPS low-power mode.
    pub low_time: SimDuration,
    /// Accumulated time in the rate-reduced state.
    pub rate_time: SimDuration,
    /// Accumulated time in the deep sleep state.
    pub deep_time: SimDuration,
    /// Accumulated transition time.
    pub transition_time: SimDuration,
    /// No new state may begin before this instant (end of the last
    /// recorded transition).
    floor: SimTime,
    /// Number of sleep windows applied.
    pub sleeps: u64,
}

impl LinkPowerTracker {
    /// Create a tracker; `record` enables the full timeline.
    pub fn new(record: bool) -> Self {
        LinkPowerTracker {
            timeline: record.then(|| StateTimeline::new(LinkPower::Full)),
            low_time: SimDuration::ZERO,
            rate_time: SimDuration::ZERO,
            deep_time: SimDuration::ZERO,
            transition_time: SimDuration::ZERO,
            floor: SimTime::ZERO,
            sleeps: 0,
        }
    }

    /// Earliest instant a new sleep may begin.
    #[inline]
    #[must_use]
    pub fn floor(&self) -> SimTime {
        self.floor
    }

    /// Apply one sleep window: lanes shut down at `t0` with the HCA timer
    /// programmed to `timer`; the rank next wanted the network at
    /// `t_want` (demand wake-up if earlier than the timer).
    ///
    /// Returns the achieved low-power span.
    pub fn apply_sleep(
        &mut self,
        params: &SimParams,
        t0: SimTime,
        timer: SimDuration,
        t_want: SimTime,
    ) -> SimDuration {
        self.apply_sleep_kind(params, t0, timer, t_want, SleepKind::Wrps)
    }

    /// [`LinkPowerTracker::apply_sleep`] with an explicit sleep depth:
    /// deep sleeps use the deep reactivation time and are accounted in
    /// `deep_time`.
    pub fn apply_sleep_kind(
        &mut self,
        params: &SimParams,
        t0: SimTime,
        timer: SimDuration,
        t_want: SimTime,
        kind: SleepKind,
    ) -> SimDuration {
        self.apply_window(params, t0, Some(timer), t_want, kind)
    }

    /// A sleep window whose wake timer *misfired*: the lanes stay in low
    /// power past the programmed timer, until the demand at `t_want`
    /// forces a reactive wake. The link draws less power (longer low
    /// span) but the rank pays the full reactivation stall — the caller
    /// charges that separately.
    pub fn apply_sleep_misfire(
        &mut self,
        params: &SimParams,
        t0: SimTime,
        t_want: SimTime,
        kind: SleepKind,
    ) -> SimDuration {
        self.apply_window(params, t0, None, t_want, kind)
    }

    /// Shared window accounting. `timer` of `None` models a misfired
    /// wake timer: only demand (`t_want`) ends the low-power span.
    fn apply_window(
        &mut self,
        params: &SimParams,
        t0: SimTime,
        timer: Option<SimDuration>,
        t_want: SimTime,
        kind: SleepKind,
    ) -> SimDuration {
        let react = match kind {
            SleepKind::Wrps => params.t_react,
            SleepKind::Rate => params.rate_t_react,
            SleepKind::Deep => params.deep_t_react,
        };
        let state = match kind {
            SleepKind::Wrps => LinkPower::Low,
            SleepKind::Rate => LinkPower::Rate,
            SleepKind::Deep => LinkPower::Deep,
        };
        let t0 = t0.max(self.floor);
        let off_end = t0 + react;
        // Demand wake cannot precede the end of the off transition (the
        // lanes must finish shutting down before they can start waking).
        let demand = t_want.max(off_end);
        let wake = match timer {
            Some(timer) => (t0 + timer).min(demand),
            None => demand, // misfired timer: only demand wakes the lanes
        };
        let low_span = wake.saturating_since(off_end);
        let full_again = wake + react;

        if let Some(tl) = &mut self.timeline {
            tl.record(t0, LinkPower::Transition);
            if !low_span.is_zero() {
                tl.record(off_end, state);
            }
            tl.record(wake, LinkPower::Transition);
            tl.record(full_again, LinkPower::Full);
        }
        match kind {
            SleepKind::Wrps => self.low_time += low_span,
            SleepKind::Rate => self.rate_time += low_span,
            SleepKind::Deep => self.deep_time += low_span,
        }
        self.transition_time += full_again.since(wake) + off_end.since(t0);
        self.floor = full_again;
        self.sleeps += 1;
        low_span
    }

    /// Apply a batch of resolved windows in order — the slice-oriented
    /// entry point the replay engine uses: window *resolution* (which
    /// only needs timestamps) happens on the timing hot path, and the
    /// link's whole power timeline is advanced here in one pass after
    /// the run completes. Accounting is identical to applying each
    /// window singly via [`LinkPowerTracker::apply_sleep_kind`] /
    /// [`LinkPowerTracker::apply_sleep_misfire`] because the only state
    /// a window reads besides its own fields is the floor left by its
    /// predecessor.
    pub fn apply_windows(&mut self, params: &SimParams, windows: &[SleepWindow]) {
        for w in windows {
            self.apply_window(params, w.t0, w.timer, w.t_want, w.kind);
        }
    }

    /// Time-averaged relative power draw over a run of length `total`.
    #[must_use]
    pub fn mean_relative_power(&self, params: &SimParams, total: SimDuration) -> f64 {
        if total.is_zero() {
            return 1.0;
        }
        let t = total.as_secs_f64();
        let low = (self.low_time.as_secs_f64() / t).min(1.0);
        let rate = (self.rate_time.as_secs_f64() / t).min(1.0);
        let deep = (self.deep_time.as_secs_f64() / t).min(1.0);
        1.0 - low * (1.0 - params.low_power_fraction)
            - rate * (1.0 - params.rate_power_fraction)
            - deep * (1.0 - params.deep_power_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_us(x)
    }

    fn dur(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    #[test]
    fn normal_sleep_window() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(true);
        // Sleep at t=100 µs with a 90 µs timer; next demand at 200 µs.
        let span = t.apply_sleep(&p, us(100), dur(90), us(200));
        // Low power from 110 to 190 µs.
        assert_eq!(span, dur(80));
        assert_eq!(t.low_time, dur(80));
        assert_eq!(t.transition_time, dur(20));
        assert_eq!(t.floor(), us(200));
        let tl = t.timeline.as_ref().unwrap();
        assert_eq!(tl.time_in(us(300), |s| s == LinkPower::Low), dur(80));
        assert_eq!(tl.current(), LinkPower::Full);
    }

    #[test]
    fn demand_wake_truncates_low_span() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(false);
        // Timer says 90 µs but the rank wants the network at t=150 µs.
        let span = t.apply_sleep(&p, us(100), dur(90), us(150));
        // Low power 110..150 only.
        assert_eq!(span, dur(40));
    }

    #[test]
    fn demand_before_off_transition_gives_zero_span() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(true);
        let span = t.apply_sleep(&p, us(100), dur(90), us(105));
        assert_eq!(span, SimDuration::ZERO);
        // Still pays both transitions.
        assert_eq!(t.transition_time, dur(20));
    }

    #[test]
    fn floor_prevents_overlapping_sleeps() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(true);
        t.apply_sleep(&p, us(100), dur(90), us(1000));
        // Second sleep nominally at t=150 (inside the first window) gets
        // pushed past the first's wake transition.
        let span = t.apply_sleep(&p, us(150), dur(50), us(1000));
        // Start shifted to the floor (200 µs): off transition ends at
        // 210 µs, timer fires at 250 µs → 40 µs of low power.
        assert_eq!(t.floor(), us(260));
        assert_eq!(span, dur(40));
    }

    #[test]
    fn mean_power_blends_draws() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(false);
        t.apply_sleep(&p, us(0), dur(580), us(1000));
        // low = 570 µs of 1000 → draw = 1 − 0.57 × 0.57 = 0.675.
        let draw = t.mean_relative_power(&p, dur(1000));
        assert!((draw - (1.0 - 0.57 * 0.57)).abs() < 1e-9, "{draw}");
        // Zero total → full draw.
        assert_eq!(t.mean_relative_power(&p, SimDuration::ZERO), 1.0);
    }

    #[test]
    fn misfire_extends_low_span_past_timer() {
        let p = SimParams::paper();
        let mut ok = LinkPowerTracker::new(false);
        let mut bad = LinkPowerTracker::new(false);
        // Timer 90 µs, next demand at 400 µs. A working timer wakes at
        // 190 µs; a misfired one sleeps until demand.
        let span_ok = ok.apply_sleep(&p, us(100), dur(90), us(400));
        let span_bad = bad.apply_sleep_misfire(&p, us(100), us(400), SleepKind::Wrps);
        assert_eq!(span_ok, dur(80));
        assert_eq!(span_bad, dur(290)); // 110..400
        assert!(bad.floor() > us(400)); // wake transition after demand
    }

    #[test]
    fn batched_windows_match_single_application() {
        let p = SimParams::paper();
        let windows = [
            SleepWindow {
                t0: us(100),
                timer: Some(dur(90)),
                t_want: us(400),
                kind: SleepKind::Wrps,
            },
            SleepWindow {
                t0: us(150), // inside the first window: floor-clamped
                timer: Some(dur(50)),
                t_want: us(1000),
                kind: SleepKind::Wrps,
            },
            SleepWindow {
                t0: us(1200),
                timer: None, // misfired timer
                t_want: us(1900),
                kind: SleepKind::Deep,
            },
            SleepWindow {
                t0: us(4000),
                timer: Some(dur(900)),
                t_want: us(6000),
                kind: SleepKind::Rate,
            },
        ];
        let mut single = LinkPowerTracker::new(true);
        for w in &windows {
            match w.timer {
                Some(timer) => {
                    single.apply_sleep_kind(&p, w.t0, timer, w.t_want, w.kind);
                }
                None => {
                    single.apply_sleep_misfire(&p, w.t0, w.t_want, w.kind);
                }
            }
        }
        let mut batched = LinkPowerTracker::new(true);
        batched.apply_windows(&p, &windows);
        assert_eq!(batched.low_time, single.low_time);
        assert_eq!(batched.rate_time, single.rate_time);
        assert_eq!(batched.deep_time, single.deep_time);
        assert_eq!(batched.transition_time, single.transition_time);
        assert_eq!(batched.floor(), single.floor());
        assert_eq!(batched.sleeps, single.sleeps);
        let a = batched.timeline.as_ref().unwrap();
        let b = single.timeline.as_ref().unwrap();
        assert_eq!(
            a.time_in(us(100_000), |s| s == LinkPower::Low),
            b.time_in(us(100_000), |s| s == LinkPower::Low)
        );
        assert_eq!(
            a.time_in(us(100_000), |s| s == LinkPower::Deep),
            b.time_in(us(100_000), |s| s == LinkPower::Deep)
        );
    }

    #[test]
    fn relative_draw_values() {
        assert_eq!(LinkPower::Full.relative_draw(0.43), 1.0);
        assert_eq!(LinkPower::Transition.relative_draw(0.43), 1.0);
        assert_eq!(LinkPower::Low.relative_draw(0.43), 0.43);
        assert_eq!(LinkPower::Rate.relative_draw(0.43), 0.25);
        assert_eq!(LinkPower::Deep.relative_draw(0.43), 0.10);
        let p = SimParams::paper();
        for s in [
            LinkPower::Full,
            LinkPower::Low,
            LinkPower::Rate,
            LinkPower::Deep,
            LinkPower::Transition,
        ] {
            assert_eq!(s.relative_draw_in(&p), s.relative_draw(p.low_power_fraction));
        }
    }

    #[test]
    fn rate_window_uses_rate_react_and_floor() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(true);
        // Rate sleep at t=1 ms with a 900 µs timer: the 100 µs retrain
        // bounds the state on both sides.
        let span = t.apply_sleep_kind(&p, us(1000), dur(900), us(10_000), SleepKind::Rate);
        // Rate-reduced from 1100 to 1900 µs.
        assert_eq!(span, dur(800));
        assert_eq!(t.rate_time, dur(800));
        assert_eq!(t.low_time, SimDuration::ZERO);
        assert_eq!(t.transition_time, dur(200));
        assert_eq!(t.floor(), us(2000));
        let tl = t.timeline.as_ref().unwrap();
        assert_eq!(tl.time_in(us(10_000), |s| s == LinkPower::Rate), dur(800));
    }

    #[test]
    fn mean_power_blends_all_three_depths() {
        let p = SimParams::paper();
        let mut t = LinkPowerTracker::new(false);
        t.low_time = dur(100);
        t.rate_time = dur(200);
        t.deep_time = dur(300);
        let draw = t.mean_relative_power(&p, dur(1000));
        let want = 1.0 - 0.1 * (1.0 - 0.43) - 0.2 * (1.0 - 0.25) - 0.3 * (1.0 - 0.10);
        assert!((draw - want).abs() < 1e-12, "{draw} vs {want}");
    }

    #[test]
    fn speeds_scale_with_generation() {
        use crate::genlink::IbGeneration;
        assert_eq!(LinkPower::Full.speed_gbps(), 40.0);
        assert_eq!(LinkPower::Low.speed_gbps(), 10.0);
        assert_eq!(LinkPower::Rate.speed_gbps(), 10.0);
        assert_eq!(LinkPower::Deep.speed_gbps(), 0.0);
        assert_eq!(LinkPower::Full.speed_gbps_for(IbGeneration::Hdr), 200.0);
        assert_eq!(LinkPower::Low.speed_gbps_for(IbGeneration::Hdr), 50.0);
        assert_eq!(LinkPower::Rate.speed_gbps_for(IbGeneration::Hdr), 50.0);
    }
}
