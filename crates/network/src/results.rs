//! Replay results and power/performance summaries.

use crate::fabric::FabricStats;
use crate::faults::FaultStats;
use crate::power::LinkPower;
use ibp_simcore::{SimDuration, SimTime, StateTimeline};

/// Outcome of one replay run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end execution time (latest rank finish).
    pub exec_time: SimDuration,
    /// Per-rank finish times.
    pub rank_finish: Vec<SimTime>,
    /// Per-rank host-link low-power (WRPS) time.
    pub link_low: Vec<SimDuration>,
    /// Per-rank host-link rate-reduced time (ladder middle rung; zero
    /// unless the ladder policy is on).
    pub link_rate: Vec<SimDuration>,
    /// Per-rank host-link deep-sleep time (§VI extension; zero under the
    /// paper's baseline WRPS policy).
    pub link_deep: Vec<SimDuration>,
    /// Per-rank host-link transition time.
    pub link_transition: Vec<SimDuration>,
    /// Per-rank sleep-window counts.
    pub link_sleeps: Vec<u64>,
    /// Optional per-rank link power timelines (Fig. 6 rendering).
    pub timelines: Option<Vec<StateTimeline<LinkPower>>>,
    /// Fabric traffic statistics.
    pub fabric: FabricStats,
    /// Relative draw of the low-power state (from the parameters used).
    pub low_power_fraction: f64,
    /// Relative draw of the rate-reduced state.
    pub rate_power_fraction: f64,
    /// Relative draw of the deep-sleep state.
    pub deep_power_fraction: f64,
    /// Fault-injection accounting (all zeros on a reliable fabric).
    pub faults: FaultStats,
}

impl SimResult {
    /// Number of ranks.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.rank_finish.len()
    }

    /// Mean fraction of the run spent in a state, averaged over ranks.
    fn mean_fraction(&self, per_rank: &[SimDuration]) -> f64 {
        if self.exec_time.is_zero() || per_rank.is_empty() {
            return 0.0;
        }
        let total = self.exec_time.as_secs_f64();
        per_rank
            .iter()
            .map(|l| (l.as_secs_f64() / total).min(1.0))
            .sum::<f64>()
            / per_rank.len() as f64
    }

    /// Fraction of the run each rank's host link spent in low power,
    /// averaged over ranks.
    #[must_use]
    pub fn mean_low_fraction(&self) -> f64 {
        self.mean_fraction(&self.link_low)
    }

    /// Fraction of the run each rank's host link spent rate-reduced,
    /// averaged over ranks.
    #[must_use]
    pub fn mean_rate_fraction(&self) -> f64 {
        self.mean_fraction(&self.link_rate)
    }

    /// Fraction of the run each rank's host link spent in deep sleep,
    /// averaged over ranks.
    #[must_use]
    pub fn mean_deep_fraction(&self) -> f64 {
        self.mean_fraction(&self.link_deep)
    }

    /// IB switch power saving (%) relative to always-on links — the
    /// paper's Figs. 7a/8a/9a metric: each port in a sleep state draws
    /// that state's fraction of nominal, so the saving sums
    /// `(1 − state fraction) × state-time share` over the three depths,
    /// averaged over the managed (host-facing) ports.
    #[must_use]
    pub fn power_saving_pct(&self) -> f64 {
        100.0 * (1.0 - self.low_power_fraction) * self.mean_low_fraction()
            + 100.0 * (1.0 - self.rate_power_fraction) * self.mean_rate_fraction()
            + 100.0 * (1.0 - self.deep_power_fraction) * self.mean_deep_fraction()
    }

    /// Mean relative power draw of the managed links (1.0 = always-on).
    #[must_use]
    pub fn mean_relative_power(&self) -> f64 {
        1.0 - self.power_saving_pct() / 100.0
    }

    /// Execution-time increase (%) of this run relative to `baseline` —
    /// the paper's Figs. 7b/8b/9b metric.
    #[must_use]
    pub fn slowdown_pct(&self, baseline: &SimResult) -> f64 {
        let b = baseline.exec_time.as_secs_f64();
        if b == 0.0 {
            return 0.0;
        }
        100.0 * (self.exec_time.as_secs_f64() - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(exec_us: u64, low_us: &[u64]) -> SimResult {
        SimResult {
            exec_time: SimDuration::from_us(exec_us),
            rank_finish: low_us
                .iter()
                .map(|_| SimTime::from_us(exec_us))
                .collect(),
            link_low: low_us.iter().map(|&l| SimDuration::from_us(l)).collect(),
            link_rate: vec![SimDuration::ZERO; low_us.len()],
            link_deep: vec![SimDuration::ZERO; low_us.len()],
            link_transition: vec![SimDuration::ZERO; low_us.len()],
            link_sleeps: vec![0; low_us.len()],
            timelines: None,
            fabric: FabricStats::default(),
            low_power_fraction: 0.43,
            rate_power_fraction: 0.25,
            deep_power_fraction: 0.10,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn power_saving_from_low_fraction() {
        // Both links low for half the run: saving = 57% × 0.5 = 28.5%.
        let r = result(1000, &[500, 500]);
        assert!((r.power_saving_pct() - 28.5).abs() < 1e-9);
        assert!((r.mean_relative_power() - 0.715).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_ranks_average() {
        let r = result(1000, &[1000, 0]);
        assert!((r.mean_low_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depth_savings_stack() {
        // One rank: 20% low, 30% rate, 40% deep.
        let mut r = result(1000, &[200]);
        r.link_rate = vec![SimDuration::from_us(300)];
        r.link_deep = vec![SimDuration::from_us(400)];
        let want = 100.0 * (0.2 * (1.0 - 0.43) + 0.3 * (1.0 - 0.25) + 0.4 * (1.0 - 0.10));
        assert!((r.power_saving_pct() - want).abs() < 1e-9);
    }

    #[test]
    fn slowdown_relative_to_baseline() {
        let base = result(1000, &[0]);
        let managed = result(1010, &[400]);
        assert!((managed.slowdown_pct(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cases() {
        let r = result(0, &[0]);
        assert_eq!(r.power_saving_pct(), 0.0);
        assert_eq!(r.slowdown_pct(&r), 0.0);
    }
}
