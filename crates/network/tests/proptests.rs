//! Property-based tests for the fabric, topology and power accounting.

use ibp_network::{
    replay, Fabric, FaultConfig, LinkPowerTracker, ReplayOptions, SimParams, Xgft,
};
use ibp_simcore::{DetRng, SimDuration, SimTime};
use ibp_trace::{MpiOp, Trace, TraceBuilder};
use proptest::prelude::*;

/// A two-rank ping-pong with arbitrary message sizes and compute gaps.
fn ping_pong(rounds: &[(u32, u32, u32)]) -> Trace {
    let mut b = TraceBuilder::new("prop-pp", 2);
    for &(bytes, gap0_us, gap1_us) in rounds {
        let bytes = u64::from(bytes) + 1;
        b.compute(0, SimDuration::from_us(u64::from(gap0_us)));
        b.compute(1, SimDuration::from_us(u64::from(gap1_us)));
        b.op(0, MpiOp::Send { to: 1, bytes });
        b.op(1, MpiOp::Recv { from: 0, bytes });
        b.op(1, MpiOp::Send { to: 0, bytes });
        b.op(0, MpiOp::Recv { from: 1, bytes });
    }
    b.build()
}

/// Arbitrary — including invalid-free — fault configurations.
fn arb_fault_config() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        0.0f64..=1.0,
        0.0f64..=1.0,
        0u64..1_000,
        0u64..1_000,
        0.0f64..=1.0,
        0u64..10_000,
    )
        .prop_map(|(seed, misfire, flap, o_lo, o_extra, degrade, window)| {
            let mut cfg = FaultConfig::quiet(seed);
            cfg.wake_misfire_prob = misfire;
            cfg.flap_prob = flap;
            cfg.flap_outage_min = SimDuration::from_us(o_lo);
            cfg.flap_outage_max = SimDuration::from_us(o_lo + o_extra);
            cfg.degrade_prob = degrade;
            cfg.degraded_window = SimDuration::from_us(window);
            cfg
        })
}

proptest! {
    /// Transfers are causal (arrival after send) and monotone in size.
    #[test]
    fn transfers_are_causal(
        msgs in proptest::collection::vec((0u32..36, 0u32..36, 1u64..1_000_000, 0u64..1_000_000), 1..100)
    ) {
        let mut f = Fabric::new(SimParams::paper(), 36, 7);
        for &(src, dst, bytes, at_us) in &msgs {
            let t = SimTime::from_us(at_us);
            let arrival = f.transfer(t, src, dst, bytes);
            prop_assert!(arrival > t, "arrival not after send");
            let min = SimParams::paper().serialize(bytes);
            if src != dst {
                prop_assert!(arrival.since(t) >= min, "faster than line rate");
            }
        }
        prop_assert_eq!(f.stats().messages, msgs.len() as u64);
    }

    /// The same message sequence always produces the same arrivals
    /// (identity-stable routing).
    #[test]
    fn fabric_is_deterministic(
        msgs in proptest::collection::vec((0u32..128, 0u32..128, 1u64..100_000), 1..60),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut f = Fabric::new(SimParams::paper(), 128, seed);
            msgs.iter()
                .map(|&(s, d, b)| f.transfer(SimTime::ZERO, s, d, b))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// XGFT routes are valid node-to-node walks for arbitrary small
    /// trees and endpoints.
    #[test]
    fn xgft_routes_valid(
        m in proptest::collection::vec(2u32..5, 1..4),
        w_seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seed_from_u64(w_seed);
        let w: Vec<u32> = m.iter().enumerate()
            .map(|(i, _)| if i == 0 { 1 } else { 1 + rng.index(3) as u32 })
            .collect();
        let t = Xgft::new(m.clone(), w);
        let n = t.node_count();
        prop_assume!(n >= 2);
        let mut prng = DetRng::seed_from_u64(pair_seed);
        let src = prng.index(n as usize) as u32;
        let mut dst = prng.index(n as usize) as u32;
        if dst == src {
            dst = (dst + 1) % n;
        }
        let path = t.route(src, dst, &mut prng);
        prop_assert_eq!(path.first().unwrap().index, src);
        prop_assert_eq!(path.last().unwrap().index, dst);
        prop_assert!(path.len() >= 3);
        // Up then down: levels rise to a single peak then fall.
        let levels: Vec<u32> = path.iter().map(|v| v.level).collect();
        let peak = levels.iter().position(|&l| l == *levels.iter().max().unwrap()).unwrap();
        prop_assert!(levels[..=peak].windows(2).all(|x| x[1] == x[0] + 1));
        prop_assert!(levels[peak..].windows(2).all(|x| x[1] + 1 == x[0]));
    }

    /// Replay with an arbitrary fault plan never panics — every outcome
    /// is an `Ok` result or a typed error — and injected faults can only
    /// lengthen execution, never shorten it.
    #[test]
    fn arbitrary_fault_plans_never_panic(
        rounds in proptest::collection::vec((0u32..1_000_000, 0u32..3_000, 0u32..3_000), 1..40),
        faults in arb_fault_config(),
    ) {
        let trace = ping_pong(&rounds);
        let params = SimParams::paper();
        let cfg = ibp_core::PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let ann = ibp_core::annotate_trace(&trace, &cfg);

        let clean = replay(&trace, Some(&ann), &params, &ReplayOptions::default())
            .expect("fault-free replay");
        let opts = ReplayOptions { faults: Some(faults), ..ReplayOptions::default() };
        let faulted = replay(&trace, Some(&ann), &params, &opts).expect("faulted replay");

        prop_assert!(
            faulted.exec_time >= clean.exec_time,
            "faults shortened execution: {} < {}",
            faulted.exec_time,
            clean.exec_time
        );
        // The execution-time gap is explained by the charged fault costs.
        prop_assert!(
            faulted.exec_time - clean.exec_time <= faulted.faults.total_charged(),
            "gap above charged fault cost"
        );
    }

    /// A quiet fault plan (all probabilities zero) is bit-identical to no
    /// fault plan at all, whatever its seed.
    #[test]
    fn quiet_fault_plans_are_inert(
        rounds in proptest::collection::vec((0u32..100_000, 0u32..2_000, 0u32..2_000), 1..20),
        seed in any::<u64>(),
    ) {
        let trace = ping_pong(&rounds);
        let params = SimParams::paper();
        let cfg = ibp_core::PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let ann = ibp_core::annotate_trace(&trace, &cfg);
        let clean = replay(&trace, Some(&ann), &params, &ReplayOptions::default()).unwrap();
        let opts = ReplayOptions {
            faults: Some(FaultConfig::quiet(seed)),
            ..ReplayOptions::default()
        };
        let quiet = replay(&trace, Some(&ann), &params, &opts).unwrap();
        prop_assert_eq!(clean.exec_time, quiet.exec_time);
        prop_assert_eq!(quiet.faults.total_events(), 0);
    }

    /// Power tracker: sleep windows never overlap, accumulated times are
    /// consistent with the recorded timeline, and 2 transitions are paid
    /// per sleep.
    #[test]
    fn tracker_accounting_consistent(
        sleeps in proptest::collection::vec((0u64..10_000, 21u64..5_000, 0u64..10_000), 1..50)
    ) {
        use ibp_network::LinkPower;
        let p = SimParams::paper();
        let mut tracker = LinkPowerTracker::new(true);
        let mut t_cursor = SimTime::ZERO;
        for &(gap_us, timer_us, want_extra_us) in &sleeps {
            let t0 = t_cursor + SimDuration::from_us(gap_us);
            let timer = SimDuration::from_us(timer_us);
            let t_want = t0 + timer + SimDuration::from_us(want_extra_us);
            tracker.apply_sleep(&p, t0, timer, t_want);
            t_cursor = tracker.floor();
        }
        prop_assert_eq!(tracker.sleeps, sleeps.len() as u64);
        // Timeline agreement.
        let end = tracker.floor();
        let tl = tracker.timeline.as_ref().unwrap();
        let low = tl.time_in(end, |s| s == LinkPower::Low);
        let trans = tl.time_in(end, |s| s == LinkPower::Transition);
        prop_assert_eq!(low, tracker.low_time);
        prop_assert_eq!(trans, tracker.transition_time);
        prop_assert_eq!(
            trans,
            SimDuration::from_us(20) * sleeps.len() as u64,
            "2 × T_react per sleep"
        );
    }
}
