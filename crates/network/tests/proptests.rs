//! Property-based tests for the fabric, topology and power accounting.

use ibp_network::{Fabric, LinkPowerTracker, SimParams, Xgft};
use ibp_simcore::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Transfers are causal (arrival after send) and monotone in size.
    #[test]
    fn transfers_are_causal(
        msgs in proptest::collection::vec((0u32..36, 0u32..36, 1u64..1_000_000, 0u64..1_000_000), 1..100)
    ) {
        let mut f = Fabric::new(SimParams::paper(), 36, 7);
        for &(src, dst, bytes, at_us) in &msgs {
            let t = SimTime::from_us(at_us);
            let arrival = f.transfer(t, src, dst, bytes);
            prop_assert!(arrival > t, "arrival not after send");
            let min = SimParams::paper().serialize(bytes);
            if src != dst {
                prop_assert!(arrival.since(t) >= min, "faster than line rate");
            }
        }
        prop_assert_eq!(f.stats().messages, msgs.len() as u64);
    }

    /// The same message sequence always produces the same arrivals
    /// (identity-stable routing).
    #[test]
    fn fabric_is_deterministic(
        msgs in proptest::collection::vec((0u32..128, 0u32..128, 1u64..100_000), 1..60),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut f = Fabric::new(SimParams::paper(), 128, seed);
            msgs.iter()
                .map(|&(s, d, b)| f.transfer(SimTime::ZERO, s, d, b))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// XGFT routes are valid node-to-node walks for arbitrary small
    /// trees and endpoints.
    #[test]
    fn xgft_routes_valid(
        m in proptest::collection::vec(2u32..5, 1..4),
        w_seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seed_from_u64(w_seed);
        let w: Vec<u32> = m.iter().enumerate()
            .map(|(i, _)| if i == 0 { 1 } else { 1 + rng.index(3) as u32 })
            .collect();
        let t = Xgft::new(m.clone(), w);
        let n = t.node_count();
        prop_assume!(n >= 2);
        let mut prng = DetRng::seed_from_u64(pair_seed);
        let src = prng.index(n as usize) as u32;
        let mut dst = prng.index(n as usize) as u32;
        if dst == src {
            dst = (dst + 1) % n;
        }
        let path = t.route(src, dst, &mut prng);
        prop_assert_eq!(path.first().unwrap().index, src);
        prop_assert_eq!(path.last().unwrap().index, dst);
        prop_assert!(path.len() >= 3);
        // Up then down: levels rise to a single peak then fall.
        let levels: Vec<u32> = path.iter().map(|v| v.level).collect();
        let peak = levels.iter().position(|&l| l == *levels.iter().max().unwrap()).unwrap();
        prop_assert!(levels[..=peak].windows(2).all(|x| x[1] == x[0] + 1));
        prop_assert!(levels[peak..].windows(2).all(|x| x[1] + 1 == x[0]));
    }

    /// Power tracker: sleep windows never overlap, accumulated times are
    /// consistent with the recorded timeline, and 2 transitions are paid
    /// per sleep.
    #[test]
    fn tracker_accounting_consistent(
        sleeps in proptest::collection::vec((0u64..10_000, 21u64..5_000, 0u64..10_000), 1..50)
    ) {
        use ibp_network::LinkPower;
        let p = SimParams::paper();
        let mut tracker = LinkPowerTracker::new(true);
        let mut t_cursor = SimTime::ZERO;
        for &(gap_us, timer_us, want_extra_us) in &sleeps {
            let t0 = t_cursor + SimDuration::from_us(gap_us);
            let timer = SimDuration::from_us(timer_us);
            let t_want = t0 + timer + SimDuration::from_us(want_extra_us);
            tracker.apply_sleep(&p, t0, timer, t_want);
            t_cursor = tracker.floor();
        }
        prop_assert_eq!(tracker.sleeps, sleeps.len() as u64);
        // Timeline agreement.
        let end = tracker.floor();
        let tl = tracker.timeline.as_ref().unwrap();
        let low = tl.time_in(end, |s| s == LinkPower::Low);
        let trans = tl.time_in(end, |s| s == LinkPower::Transition);
        prop_assert_eq!(low, tracker.low_time);
        prop_assert_eq!(trans, tracker.transition_time);
        prop_assert_eq!(
            trans,
            SimDuration::from_us(20) * sleeps.len() as u64,
            "2 × T_react per sleep"
        );
    }
}
