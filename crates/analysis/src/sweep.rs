//! Parallel experiment engine with trace memoization.
//!
//! The paper's exhibits are a grid of `(app × nprocs × GT ×
//! displacement)` cells, and many cells share the expensive parts: the
//! workload trace (a pure function of `(app, nprocs, seed)`), the
//! baseline replay of that trace, and the GT-selection sweep. The
//! [`SweepEngine`] executes a declarative list of cells on a rayon pool
//! and memoizes those three artefacts behind keyed caches, so each
//! unique trace is generated and baseline-replayed exactly once per
//! sweep regardless of how many cells touch it.
//!
//! ## Determinism guarantee
//!
//! Parallel output is bit-identical to serial output:
//!
//! * every cell is a pure function of its [`CellKey`] and payload — no
//!   cell reads mutable state another cell writes;
//! * results are collected **by cell index**, never by completion
//!   order;
//! * any per-cell randomness (e.g. fault plans) must come from
//!   [`CellCtx::derived_seed`], a hash of the cell key — never from a
//!   global counter or the pool's scheduling;
//! * the cached artefacts are themselves deterministic pure functions
//!   of the key, so a cache hit returns exactly what a recompute would.
//!
//! `--jobs 1` (or `parallel = false`, or `IBP_JOBS=1`) bypasses the
//! pool entirely and runs the same closures in a plain loop on the
//! calling thread; the golden-exhibit suite and the serial-vs-parallel
//! property test pin the byte equality.

use crate::experiment::make_trace;
use crate::gt_select::{choose_gt, GtPoint};
use ibp_network::{replay, ReplayOptions, SimParams, SimResult};
use ibp_trace::Trace;
use ibp_workloads::{AppKind, Scaling};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Trace-generation variant encoded in a [`CellKey`]. The default trace
/// function understands strong and weak scaling; studies with bespoke
/// generators (e.g. jitter amplification) install their own function via
/// [`SweepEngine::with_trace_fn`] and assign variants as they see fit.
pub const VARIANT_STRONG: u32 = 0;
/// Weak-scaling variant (per-rank work fixed); see [`VARIANT_STRONG`].
pub const VARIANT_WEAK: u32 = 1;

/// Identity of the memoizable part of one grid cell: everything trace
/// generation (and hence the baseline replay) depends on. GT and
/// displacement deliberately do not appear — cells that differ only in
/// the power configuration share one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Application.
    pub app: AppKind,
    /// Process count.
    pub nprocs: u32,
    /// Workload generation seed.
    pub seed: u64,
    /// Trace-generation variant (see [`VARIANT_STRONG`]).
    pub variant: u32,
}

impl CellKey {
    /// A strong-scaling (default-workload) cell key.
    pub fn new(app: AppKind, nprocs: u32, seed: u64) -> Self {
        CellKey {
            app,
            nprocs,
            seed,
            variant: VARIANT_STRONG,
        }
    }

    /// Deterministic 64-bit digest of the key (SplitMix64 over its
    /// fields). Stable across runs, platforms and pool schedules.
    pub fn digest(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for field in [
            self.app.name().bytes().fold(0u64, |a, b| {
                a.wrapping_mul(131).wrapping_add(b as u64)
            }),
            self.nprocs as u64,
            self.seed,
            self.variant as u64,
        ] {
            h = splitmix64(h ^ field);
        }
        h
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a sweep executes.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker count; 0 means available parallelism.
    pub jobs: usize,
    /// Escape hatch: `false` forces the serial in-thread path no matter
    /// what `jobs` says.
    pub parallel: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            parallel: true,
        }
    }
}

impl SweepOptions {
    /// Options honouring the `IBP_JOBS` environment variable.
    pub fn from_env() -> Self {
        let jobs = std::env::var("IBP_JOBS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        SweepOptions {
            jobs,
            parallel: true,
        }
    }

    /// A fixed-width pool (`jobs = n`, `n = 0` meaning auto).
    pub fn with_jobs(n: usize) -> Self {
        SweepOptions {
            jobs: n,
            parallel: true,
        }
    }

    /// The serial escape hatch.
    pub fn serial() -> Self {
        SweepOptions {
            jobs: 1,
            parallel: false,
        }
    }

    /// The worker count a sweep will actually use.
    pub fn effective_jobs(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Strip `--jobs N` / `--serial` from `args` (in place), returning the
/// sweep options they select on top of `IBP_JOBS`. Binaries call this
/// before reading their positional arguments.
pub fn sweep_args(args: &mut Vec<String>) -> Result<SweepOptions, String> {
    let mut opts = SweepOptions::from_env();
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let val = args
            .get(i + 1)
            .ok_or_else(|| "--jobs needs a value".to_string())?;
        opts.jobs = val
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --jobs: {val}"))?;
        args.drain(i..=i + 1);
    }
    if let Some(i) = args.iter().position(|a| a == "--serial") {
        opts.parallel = false;
        args.remove(i);
    }
    Ok(opts)
}

/// Wall-clock and cache-effectiveness counters for one sweep (or one
/// exhibit's slice of a shared engine), emitted alongside each results
/// JSON as `<name>.stats.json`. Everything except `wall_ms` is
/// deterministic for a fixed grid; `jobs`/`wall_ms` describe the run,
/// which is why stats files are excluded from byte-equality diffs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Cells executed.
    pub cells: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Whether the pool path was taken (false = serial escape hatch).
    pub parallel: bool,
    /// Traces generated (unique keys touched).
    pub traces_generated: u64,
    /// Trace-cache hits (cells that reused a memoized trace).
    pub trace_hits: u64,
    /// Baseline replays computed (unique keys replayed).
    pub baselines_computed: u64,
    /// Baseline-cache hits.
    pub baseline_hits: u64,
    /// GT-selection sweeps computed (unique (key, displacement) pairs).
    pub gt_selections: u64,
    /// GT-selection cache hits.
    pub gt_hits: u64,
    /// Wall-clock milliseconds covered by these counters.
    pub wall_ms: u64,
}

impl SweepStats {
    /// The counter delta since `earlier` (same engine, earlier
    /// snapshot); used by `all` to attribute shared-engine counters to
    /// individual exhibits.
    pub fn since(&self, earlier: &SweepStats) -> SweepStats {
        SweepStats {
            cells: self.cells - earlier.cells,
            jobs: self.jobs,
            parallel: self.parallel,
            traces_generated: self.traces_generated - earlier.traces_generated,
            trace_hits: self.trace_hits - earlier.trace_hits,
            baselines_computed: self.baselines_computed - earlier.baselines_computed,
            baseline_hits: self.baseline_hits - earlier.baseline_hits,
            gt_selections: self.gt_selections - earlier.gt_selections,
            gt_hits: self.gt_hits - earlier.gt_hits,
            wall_ms: self.wall_ms - earlier.wall_ms,
        }
    }
}

/// A keyed once-cache: the first caller computes, concurrent callers for
/// the same key block on the same `OnceLock` (so the value is computed
/// exactly once even under contention), later callers hit.
struct KeyedCache<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
    computed: AtomicU64,
    hits: AtomicU64,
}

impl<K: std::hash::Hash + Eq + Clone, V> KeyedCache<K, V> {
    fn new() -> Self {
        KeyedCache {
            map: Mutex::new(HashMap::new()),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let mut map = self.map.lock().unwrap();
            map.entry(key.clone()).or_default().clone()
        };
        let mut fresh = false;
        let value = slot
            .get_or_init(|| {
                fresh = true;
                self.computed.fetch_add(1, Ordering::Relaxed);
                Arc::new(compute())
            })
            .clone();
        if !fresh {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }
}

/// The signature of a pluggable trace source (see
/// [`SweepEngine::with_trace_fn`]).
pub type TraceFn = Arc<dyn Fn(&CellKey) -> Trace + Send + Sync>;

/// The default trace source: strong-scaling paper workloads for
/// [`VARIANT_STRONG`], weak-scaling ones for [`VARIANT_WEAK`].
pub fn default_trace_fn() -> TraceFn {
    Arc::new(|key: &CellKey| match key.variant {
        VARIANT_STRONG => make_trace(key.app, key.nprocs, key.seed),
        VARIANT_WEAK => crate::experiment::make_trace_scaled(
            key.app,
            key.nprocs,
            key.seed,
            Scaling::Weak,
        ),
        other => panic!("no default workload for trace variant {other}"),
    })
}

/// The parallel sweep engine: a rayon pool plus keyed caches for
/// traces, baseline replays and GT selections. One engine instance is
/// shared across every exhibit of a run (`all` reuses traces between
/// Table I, Table III and the figures).
pub struct SweepEngine {
    opts: SweepOptions,
    pool: rayon::ThreadPool,
    trace_fn: TraceFn,
    traces: KeyedCache<CellKey, Trace>,
    baselines: KeyedCache<CellKey, SimResult>,
    gt_choices: KeyedCache<(CellKey, u64), GtPoint>,
    cells: AtomicU64,
    started: Instant,
}

impl SweepEngine {
    /// An engine with the default (paper-workload) trace source.
    pub fn new(opts: SweepOptions) -> Self {
        Self::with_trace_fn(opts, default_trace_fn())
    }

    /// An engine generating traces through `trace_fn` (tests and
    /// bespoke studies: shrunk workloads, jitter amplification, …).
    pub fn with_trace_fn(opts: SweepOptions, trace_fn: TraceFn) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(opts.effective_jobs())
            .build()
            .expect("thread pool");
        SweepEngine {
            opts,
            pool,
            trace_fn,
            traces: KeyedCache::new(),
            baselines: KeyedCache::new(),
            gt_choices: KeyedCache::new(),
            cells: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The options this engine runs with.
    pub fn options(&self) -> &SweepOptions {
        &self.opts
    }

    /// The memoized trace for `key` (generated on first use).
    pub fn trace(&self, key: &CellKey) -> Arc<Trace> {
        self.traces.get_or_compute(key, || (self.trace_fn)(key))
    }

    /// The memoized fault-free baseline replay for `key`.
    pub fn baseline(&self, key: &CellKey) -> Arc<SimResult> {
        let trace = self.trace(key);
        self.baselines.get_or_compute(key, || {
            replay(
                &trace,
                None,
                &SimParams::paper(),
                &ReplayOptions::default(),
            )
            .expect("baseline replay of a generated trace")
        })
    }

    /// The memoized GT selection for `key` at `displacement`.
    pub fn choose_gt(&self, key: &CellKey, displacement: f64) -> Arc<GtPoint> {
        let trace = self.trace(key);
        self.gt_choices
            .get_or_compute(&(*key, displacement.to_bits()), || {
                choose_gt(&trace, key.app, displacement)
            })
    }

    /// Execute one cell list: `work(ctx, item, index)` for every item,
    /// on the pool (or serially under the escape hatch), with results
    /// collected **by index**. `key_of` maps an item to the cell key
    /// whose memoized trace the context carries.
    pub fn run_cells<I, T, K, F>(&self, items: &[I], key_of: K, work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        K: Fn(&I) -> CellKey + Sync,
        F: Fn(&CellCtx<'_>, &I, usize) -> T + Sync,
    {
        self.cells.fetch_add(items.len() as u64, Ordering::Relaxed);
        let jobs = self.opts.effective_jobs();
        // Budget left over after one worker per cell goes to rank-level
        // parallelism inside each cell (CellCtx::annotate): a 4-cell
        // exhibit on 16 workers annotates each trace on 4 threads.
        // Byte-identical either way — rank annotation is an independent
        // per-rank map (see ibp_core::map_ranks).
        let rank_jobs = (jobs / items.len().max(1)).max(1);
        if jobs <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let ctx = self.ctx_jobs(key_of(item), rank_jobs);
                    work(&ctx, item, i)
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        self.pool.scope(|s| {
            for _ in 0..jobs.min(items.len()) {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let ctx = self.ctx_jobs(key_of(&items[i]), rank_jobs);
                    *slots[i].lock().unwrap() = Some(work(&ctx, &items[i], i));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("cell executed"))
            .collect()
    }

    fn ctx_jobs(&self, key: CellKey, rank_jobs: usize) -> CellCtx<'_> {
        CellCtx {
            trace: self.trace(&key),
            key,
            rank_jobs,
            engine: self,
        }
    }

    /// Cumulative counters since engine construction. Use
    /// [`SweepStats::since`] to attribute a slice of a shared engine.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            cells: self.cells.load(Ordering::Relaxed),
            jobs: self.opts.effective_jobs(),
            parallel: self.opts.parallel && self.opts.effective_jobs() > 1,
            traces_generated: self.traces.computed.load(Ordering::Relaxed),
            trace_hits: self.traces.hits.load(Ordering::Relaxed),
            baselines_computed: self.baselines.computed.load(Ordering::Relaxed),
            baseline_hits: self.baselines.hits.load(Ordering::Relaxed),
            gt_selections: self.gt_choices.computed.load(Ordering::Relaxed),
            gt_hits: self.gt_choices.hits.load(Ordering::Relaxed),
            wall_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

/// Per-cell execution context: the memoized trace plus accessors for
/// the other keyed artefacts.
pub struct CellCtx<'e> {
    /// The cell's key.
    pub key: CellKey,
    /// The (shared, read-only) trace for this key.
    pub trace: Arc<Trace>,
    /// Worker budget for *intra*-cell rank parallelism: the sweep's
    /// leftover threads once every cell has one (1 when the cell grid
    /// saturates the pool). Feed it to [`CellCtx::annotate`] or the
    /// `*_jobs` experiment/baseline entry points.
    pub rank_jobs: usize,
    engine: &'e SweepEngine,
}

impl CellCtx<'_> {
    /// The memoized fault-free baseline replay of this cell's trace.
    pub fn baseline(&self) -> Arc<SimResult> {
        self.engine.baseline(&self.key)
    }

    /// Annotate this cell's trace, spreading ranks over the cell's
    /// [`rank_jobs`](CellCtx::rank_jobs) budget. Output is identical to
    /// `annotate_trace` for any budget.
    pub fn annotate(&self, cfg: &ibp_core::PowerConfig) -> ibp_core::TraceAnnotations {
        ibp_core::annotate_trace_jobs(&self.trace, cfg, self.rank_jobs)
    }

    /// The memoized GT selection for this cell at `displacement`.
    pub fn choose_gt(&self, displacement: f64) -> Arc<GtPoint> {
        self.engine.choose_gt(&self.key, displacement)
    }

    /// A seed derived from the cell key and `salt` — the only sanctioned
    /// source of per-cell randomness. Identical between serial and
    /// parallel execution by construction (no global state involved).
    pub fn derived_seed(&self, salt: u64) -> u64 {
        splitmix64(self.key.digest() ^ salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_runtime_only, RunConfig};

    /// A cheap trace source for engine tests.
    fn tiny_trace_fn() -> TraceFn {
        Arc::new(|key: &CellKey| {
            let alya = ibp_workloads::Alya {
                iterations: 20,
                ..Default::default()
            };
            ibp_workloads::Workload::generate(&alya, key.nprocs, key.seed)
        })
    }

    fn engine(jobs: usize) -> SweepEngine {
        SweepEngine::with_trace_fn(SweepOptions::with_jobs(jobs), tiny_trace_fn())
    }

    #[test]
    fn same_key_returns_same_arc() {
        let e = engine(2);
        let k = CellKey::new(AppKind::Alya, 4, 7);
        let a = e.trace(&k);
        let b = e.trace(&k);
        assert!(Arc::ptr_eq(&a, &b));
        let s = e.stats();
        assert_eq!(s.traces_generated, 1);
        assert_eq!(s.trace_hits, 1);
    }

    #[test]
    fn distinct_seeds_get_distinct_traces() {
        let e = engine(1);
        let a = e.trace(&CellKey::new(AppKind::Alya, 4, 1));
        let b = e.trace(&CellKey::new(AppKind::Alya, 4, 2));
        assert!(!Arc::ptr_eq(&a, &b));
        // Different seeds really do change the workload.
        assert_ne!(
            serde_json::to_string(&*a).unwrap(),
            serde_json::to_string(&*b).unwrap()
        );
        assert_eq!(e.stats().traces_generated, 2);
    }

    #[test]
    fn three_gts_one_app_is_one_generation() {
        // A sweep over 3 GT values × 1 app: exactly 1 trace generation,
        // 2 hits, visible through the SweepStats counters.
        let e = engine(2);
        let key = CellKey::new(AppKind::Alya, 4, 3);
        let cells: Vec<f64> = vec![20.0, 46.0, 100.0];
        let results = e.run_cells(
            &cells,
            |_| key,
            |ctx, &gt, _| {
                let cfg = RunConfig::new(gt, 0.01);
                run_runtime_only(&ctx.trace, ctx.key.app, &cfg).hit_rate_pct
            },
        );
        assert_eq!(results.len(), 3);
        let s = e.stats();
        assert_eq!(s.cells, 3);
        assert_eq!(s.traces_generated, 1, "{s:?}");
        assert_eq!(s.trace_hits, 2, "{s:?}");
    }

    #[test]
    fn baseline_computed_once_per_key() {
        let e = engine(2);
        let key = CellKey::new(AppKind::Alya, 4, 3);
        let cells = [0u8; 4];
        e.run_cells(&cells, |_| key, |ctx, _, _| ctx.baseline().exec_time);
        let s = e.stats();
        assert_eq!(s.baselines_computed, 1);
        assert_eq!(s.baseline_hits, 3);
    }

    #[test]
    fn results_ordered_by_index_not_completion() {
        let e = engine(4);
        let items: Vec<u64> = (0..64).collect();
        let out = e.run_cells(
            &items,
            |&i| CellKey::new(AppKind::Alya, 4, i % 2),
            |_, &i, idx| {
                assert_eq!(i as usize, idx);
                i * 10
            },
        );
        assert_eq!(out, items.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn derived_seed_depends_only_on_key_and_salt() {
        let e1 = engine(1);
        let e4 = engine(4);
        let k = CellKey::new(AppKind::Wrf, 32, 0xD1C0);
        let a = e1.ctx_jobs(k, 1).derived_seed(42);
        let b = e4.ctx_jobs(k, 4).derived_seed(42);
        assert_eq!(a, b);
        assert_ne!(a, e1.ctx_jobs(k, 1).derived_seed(43));
        let k2 = CellKey::new(AppKind::Wrf, 64, 0xD1C0);
        assert_ne!(a, e1.ctx_jobs(k2, 1).derived_seed(42));
    }

    #[test]
    fn leftover_budget_goes_to_rank_jobs() {
        // 8 workers over 2 cells → 4 threads of rank parallelism each;
        // the serial escape hatch pins everything to 1.
        let e = engine(8);
        let key = CellKey::new(AppKind::Alya, 4, 1);
        let items = [0u8; 2];
        let budgets = e.run_cells(&items, |_| key, |ctx, _, _| ctx.rank_jobs);
        assert_eq!(budgets, vec![4, 4]);
        let serial = SweepEngine::with_trace_fn(SweepOptions::serial(), tiny_trace_fn());
        let budgets = serial.run_cells(&items, |_| key, |ctx, _, _| ctx.rank_jobs);
        assert_eq!(budgets, vec![1, 1]);
    }

    #[test]
    fn ctx_annotate_matches_serial_annotation() {
        let e = engine(8);
        let key = CellKey::new(AppKind::Alya, 6, 5);
        let cfg = ibp_core::PowerConfig::default();
        let out = e.run_cells(&[0u8], |_| key, |ctx, _, _| {
            (ctx.rank_jobs, ctx.annotate(&cfg))
        });
        let (rank_jobs, parallel) = &out[0];
        assert_eq!(*rank_jobs, 8, "single cell receives the whole budget");
        let serial = ibp_core::annotate_trace(&e.trace(&key), &cfg);
        assert_eq!(*parallel, serial);
    }

    #[test]
    fn sweep_args_parsing() {
        let mut args = vec!["16".to_string(), "--jobs".into(), "3".into()];
        let opts = sweep_args(&mut args).unwrap();
        assert_eq!(opts.jobs, 3);
        assert!(opts.parallel);
        assert_eq!(args, vec!["16".to_string()]);

        let mut args = vec!["--serial".to_string(), "8".into()];
        let opts = sweep_args(&mut args).unwrap();
        assert!(!opts.parallel);
        assert_eq!(opts.effective_jobs(), 1);
        assert_eq!(args, vec!["8".to_string()]);

        let mut bad = vec!["--jobs".to_string(), "zero".into()];
        assert!(sweep_args(&mut bad).is_err());
        let mut missing = vec!["--jobs".to_string()];
        assert!(sweep_args(&mut missing).is_err());
    }

    #[test]
    fn stats_since_subtracts() {
        let e = engine(1);
        e.trace(&CellKey::new(AppKind::Alya, 4, 1));
        let snap = e.stats();
        e.trace(&CellKey::new(AppKind::Alya, 4, 2));
        e.trace(&CellKey::new(AppKind::Alya, 4, 2));
        let d = e.stats().since(&snap);
        assert_eq!(d.traces_generated, 1);
        assert_eq!(d.trace_hits, 1);
    }
}
