//! # ibp-analysis — experiment drivers for every table and figure
//!
//! Reproduction harness for the paper's evaluation: each module (and the
//! matching binary in `src/bin/`) regenerates one exhibit:
//!
//! | exhibit | module / binary |
//! |---|---|
//! | Table I (idle-interval distribution) | [`table1`] / `table1` |
//! | Table II (simulation parameters) | `params` binary |
//! | Table III (chosen GT + hit rate) | [`gt_select`] / `table3` |
//! | Table IV (PPA overheads) | [`table4`] / `table4` |
//! | Figs. 7–9 (savings + slowdown per displacement) | [`figures`] / `fig7`–`fig9` |
//! | Fig. 10 (GT sweep) | [`gt_select`] / `fig10` |
//! | Generation × sleep-depth frontier (extension) | [`generation`] |
//!
//! [`paper_ref`] holds the published values so every binary prints
//! ours-vs-paper columns, and `EXPERIMENTS.md` is assembled from the same
//! data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exhibits;
pub mod experiment;
pub mod extensions;
pub mod generation;
pub mod gt_select;
pub mod output;
pub mod paper_ref;
pub mod report;
pub mod svg;
pub mod sweep;

pub use experiment::{
    make_trace, make_trace_scaled, run, run_on_trace, run_runtime_only, run_runtime_only_jobs,
    run_with_baseline, run_with_baseline_jobs,
    RunConfig, RunResult,
};
pub use exhibits::{fig10, figure, table1, table3, table4, ExhibitGrid};
pub use generation::{
    generation_frontier, render_generation_frontier, GenerationFrontierRow, FRONTIER_GENERATIONS,
};
pub use gt_select::{choose_gt, select, sweep, GtPoint, GT_GRID_US};
pub use output::{bin_main, OutputDir};
pub use report::Table;
pub use sweep::{sweep_args, CellCtx, CellKey, SweepEngine, SweepOptions, SweepStats};
