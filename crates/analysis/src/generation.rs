//! Generation frontier: the savings-vs-slowdown trade-off of every
//! sleep depth across InfiniBand generations.
//!
//! The paper evaluates one hardware point (4X QDR, WRPS only). The
//! [`ibp_network::genlink`] ladder generalizes both axes; this exhibit
//! drives the paper's five applications across generations × sleep
//! policies on the sweep engine and reports the per-port and
//! whole-switch frontier each generation offers:
//!
//! * `wrps` — the paper's width-reduction mechanism, unchanged;
//! * `deep` — the §VI two-tier policy (WRPS + 5 ms-threshold deep);
//! * `ladder` — the full three-rung depth ladder (WRPS, rate
//!   reduction, deep sleep), depths picked per predicted idle.
//!
//! Faster generations drain the same traffic in less wire time, so idle
//! windows widen and the deeper rungs profit more — the frontier shows
//! how much of that headroom each policy converts.

use crate::exhibits::SELECT_DISPLACEMENT;
use crate::report::{f1, f2, Table};
use crate::sweep::{CellKey, SweepEngine};
use ibp_core::PowerConfig;
use ibp_network::{replay, IbGeneration, ReplayOptions};
use ibp_simcore::SimDuration;
use ibp_workloads::AppKind;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The generations the frontier sweeps (oldest first). NDR/XDR are
/// available through [`IbGeneration::ALL`] but excluded from the pinned
/// exhibit: past HDR the workloads' wire time is negligible and the
/// rows stop moving.
pub const FRONTIER_GENERATIONS: [IbGeneration; 4] = [
    IbGeneration::Qdr,
    IbGeneration::Fdr,
    IbGeneration::Edr,
    IbGeneration::Hdr,
];

/// The deep-sleep threshold of the two-tier (`deep`) policy.
pub const DEEP_THRESHOLD: SimDuration = SimDuration::from_ms(5);

/// One (generation, app, policy) point on the frontier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationFrontierRow {
    /// Generation name (`QDR`, `FDR`, ...).
    pub generation: String,
    /// Full 4X link rate, Gb/s.
    pub link_gbps: f64,
    /// Application name.
    pub app: String,
    /// Process count.
    pub nprocs: u32,
    /// Sleep policy (`wrps`, `deep`, `ladder`).
    pub policy: String,
    /// Per-port (paper-metric) power saving, %.
    pub saving_pct: f64,
    /// Execution-time increase vs this generation's baseline, %.
    pub slowdown_pct: f64,
    /// Whole-switch saving on the generation's representative switch, %.
    pub switch_saving_pct: f64,
    /// Mean share of the run spent in WRPS 1X, %.
    pub wrps_time_pct: f64,
    /// Mean share of the run spent rate-reduced, %.
    pub rate_time_pct: f64,
    /// Mean share of the run spent in deep sleep, %.
    pub deep_time_pct: f64,
}

/// The sleep policies the frontier compares, in row order.
fn policies(gen: IbGeneration, gt: SimDuration) -> Vec<(&'static str, PowerConfig)> {
    vec![
        ("wrps", PowerConfig::paper(gt, SELECT_DISPLACEMENT)),
        (
            "deep",
            PowerConfig::paper(gt, SELECT_DISPLACEMENT).with_deep_sleep(DEEP_THRESHOLD),
        ),
        ("ladder", gen.ladder().power_config(gt, SELECT_DISPLACEMENT)),
    ]
}

/// Compute the generation frontier: every app (8/9 ranks) × every
/// [`FRONTIER_GENERATIONS`] entry × three sleep policies.
///
/// Each generation's hardware description is validated up front, so a
/// disordered ladder or inconsistent switch model surfaces as one typed
/// error naming the generation instead of a panic mid-sweep.
pub fn generation_frontier(
    engine: &SweepEngine,
    seed: u64,
) -> Result<Vec<GenerationFrontierRow>, String> {
    for gen in FRONTIER_GENERATIONS {
        gen.switch_power_model()
            .validate()
            .map_err(|e| format!("generation {gen}: switch power model: {e}"))?;
        gen.ladder()
            .validate()
            .map_err(|e| format!("generation {gen}: sleep ladder: {e}"))?;
        for (name, cfg) in policies(gen, SimDuration::from_us(20)) {
            cfg.validate()
                .map_err(|e| format!("generation {gen}: {name} policy: {e}"))?;
        }
    }

    // Generation-major cell order; all 4 × 5 cells share the engine's
    // five memoized traces (the trace depends on the app, not the link
    // generation).
    let cells: Vec<(IbGeneration, CellKey)> = FRONTIER_GENERATIONS
        .iter()
        .flat_map(|&gen| {
            AppKind::ALL.iter().map(move |&app| {
                let n = if app == AppKind::NasBt { 9 } else { 8 };
                (gen, CellKey::new(app, n, seed))
            })
        })
        .collect();

    let per_cell: Vec<Vec<GenerationFrontierRow>> = engine.run_cells(
        &cells,
        |&(_, k)| k,
        |ctx, &(gen, key), _| {
            let params = gen.sim_params();
            let trace = &*ctx.trace;
            // The engine's memoized baseline is the QDR (paper-params)
            // one; other generations replay their own fault-free
            // baseline so slowdown compares like with like.
            let baseline = if gen == IbGeneration::Qdr {
                ctx.baseline()
            } else {
                Arc::new(
                    replay(trace, None, &params, &ReplayOptions::default())
                        .expect("baseline replay of a generated trace"),
                )
            };
            let model = gen.switch_power_model();
            policies(gen, SimDuration::from_us(20))
                .into_iter()
                .map(|(name, cfg)| {
                    let ann = ctx.annotate(&cfg);
                    let managed = replay(trace, Some(&ann), &params, &ReplayOptions::default())
                        .expect("managed replay of a generated trace");
                    let report = model.report(&managed, managed.exec_time);
                    GenerationFrontierRow {
                        generation: gen.name().to_string(),
                        link_gbps: gen.link_gbps(),
                        app: key.app.name().to_string(),
                        nprocs: key.nprocs,
                        policy: name.to_string(),
                        saving_pct: managed.power_saving_pct(),
                        slowdown_pct: managed.slowdown_pct(&baseline),
                        switch_saving_pct: report.switch_saving_pct,
                        wrps_time_pct: 100.0 * managed.mean_low_fraction(),
                        rate_time_pct: 100.0 * managed.mean_rate_fraction(),
                        deep_time_pct: 100.0 * managed.mean_deep_fraction(),
                    }
                })
                .collect()
        },
    );
    Ok(per_cell.into_iter().flatten().collect())
}

/// Render the frontier table.
pub fn render_generation_frontier(rows: &[GenerationFrontierRow]) -> String {
    let mut t = Table::new(&[
        "gen", "gb/s", "app", "policy", "saving %", "slowdown %", "switch %", "wrps t%",
        "rate t%", "deep t%",
    ]);
    for r in rows {
        t.row(vec![
            r.generation.clone(),
            f1(r.link_gbps),
            r.app.clone(),
            r.policy.clone(),
            f1(r.saving_pct),
            f2(r.slowdown_pct),
            f1(r.switch_saving_pct),
            f1(r.wrps_time_pct),
            f1(r.rate_time_pct),
            f1(r.deep_time_pct),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepOptions, TraceFn};
    use ibp_workloads::Workload;

    /// Shrunk traces so the frontier test stays debug-profile cheap.
    fn tiny_trace_fn() -> TraceFn {
        Arc::new(|key: &CellKey| match key.app {
            AppKind::Gromacs => ibp_workloads::Gromacs { iterations: 40, ..Default::default() }
                .generate(key.nprocs, key.seed),
            AppKind::Alya => ibp_workloads::Alya { iterations: 30, ..Default::default() }
                .generate(key.nprocs, key.seed),
            AppKind::Wrf => ibp_workloads::Wrf { iterations: 20, ..Default::default() }
                .generate(key.nprocs, key.seed),
            AppKind::NasBt => ibp_workloads::NasBt { iterations: 30, ..Default::default() }
                .generate(key.nprocs, key.seed),
            AppKind::NasMg => ibp_workloads::NasMg { iterations: 25, ..Default::default() }
                .generate(key.nprocs, key.seed),
        })
    }

    #[test]
    fn frontier_covers_the_full_grid_in_order() {
        let engine = SweepEngine::with_trace_fn(SweepOptions::default(), tiny_trace_fn());
        let rows = generation_frontier(&engine, 7).expect("valid standard hardware");
        assert_eq!(rows.len(), FRONTIER_GENERATIONS.len() * AppKind::ALL.len() * 3);
        // Generation-major, app-minor, policy order pinned.
        assert_eq!(rows[0].generation, "QDR");
        assert_eq!(rows[0].policy, "wrps");
        assert_eq!(rows[1].policy, "deep");
        assert_eq!(rows[2].policy, "ladder");
        assert_eq!(rows.last().unwrap().generation, "HDR");
        // One trace per app regardless of the 4 generations touching it.
        assert_eq!(engine.stats().traces_generated, 5);
        let text = render_generation_frontier(&rows);
        assert!(text.contains("HDR") && text.contains("ladder"));
    }

    #[test]
    fn qdr_wrps_rows_match_the_paper_mechanism() {
        // The frontier's QDR/wrps corner is the paper configuration:
        // identical to replaying the paper mechanism by hand.
        let engine = SweepEngine::with_trace_fn(SweepOptions::default(), tiny_trace_fn());
        let rows = generation_frontier(&engine, 3).unwrap();
        let key = CellKey::new(AppKind::Alya, 8, 3);
        let cfg = PowerConfig::paper(SimDuration::from_us(20), SELECT_DISPLACEMENT);
        let ann = ibp_core::annotate_trace(&engine.trace(&key), &cfg);
        let managed = replay(
            &engine.trace(&key),
            Some(&ann),
            &ibp_network::SimParams::paper(),
            &ReplayOptions::default(),
        )
        .unwrap();
        let row = rows
            .iter()
            .find(|r| r.generation == "QDR" && r.app == "alya" && r.policy == "wrps")
            .unwrap();
        assert_eq!(row.saving_pct, managed.power_saving_pct());
        assert_eq!(row.rate_time_pct, 0.0, "wrps policy never rate-reduces");
        assert_eq!(row.deep_time_pct, 0.0, "wrps policy never sleeps deep");
    }

    #[test]
    fn ladder_never_loses_to_wrps_on_savings() {
        let engine = SweepEngine::with_trace_fn(SweepOptions::default(), tiny_trace_fn());
        let rows = generation_frontier(&engine, 11).unwrap();
        for chunk in rows.chunks_exact(3) {
            let (wrps, ladder) = (&chunk[0], &chunk[2]);
            assert!(
                ladder.saving_pct >= wrps.saving_pct - 1e-9,
                "{} {}: ladder {} < wrps {}",
                wrps.generation,
                wrps.app,
                ladder.saving_pct,
                wrps.saving_pct
            );
        }
    }
}
