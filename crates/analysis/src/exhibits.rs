//! Assembly of the paper's tables and figures from experiment runs.
//!
//! Each function produces both the data (serialisable) and a rendered
//! text block; the binaries print the text and dump the JSON next to it.

use crate::experiment::{make_trace, run_on_trace, RunConfig, RunResult};
use crate::gt_select::{choose_gt, sweep, GtPoint};
use crate::paper_ref;
use crate::report::{f1, f2, Table};
use ibp_trace::IdleDistribution;
use ibp_workloads::AppKind;
use serde::{Deserialize, Serialize};

/// Default experiment seed (all exhibits share it; the workloads are
/// deterministic in it).
pub const SEED: u64 = 0xD1C0;

/// Displacement used for GT selection (the paper's best case, 1%).
pub const SELECT_DISPLACEMENT: f64 = 0.01;

/// Table I: idle-interval distribution rows for every app × scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Process count.
    pub nprocs: u32,
    /// The three-bucket distribution.
    pub idle: IdleDistribution,
}

/// Compute Table I.
pub fn table1(seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        for &n in &paper_ref::paper_procs(app) {
            let trace = make_trace(app, n, seed);
            rows.push(Table1Row {
                app: app.name().to_string(),
                nprocs: n,
                idle: IdleDistribution::from_trace(&trace),
            });
        }
    }
    rows
}

/// Render Table I like the paper (counts, % of intervals, % of idle time
/// per bucket).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut t = Table::new(&[
        "app", "N", "<20us n", "<20us %", "<20us t%", "20-200 n", "20-200 %", "20-200 t%",
        ">200 n", ">200 %", ">200 t%",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.nprocs.to_string(),
            r.idle.short.intervals.to_string(),
            f2(r.idle.short.interval_pct),
            f2(r.idle.short.time_pct),
            r.idle.medium.intervals.to_string(),
            f2(r.idle.medium.interval_pct),
            f2(r.idle.medium.time_pct),
            r.idle.long.intervals.to_string(),
            f2(r.idle.long.interval_pct),
            f2(r.idle.long.time_pct),
        ]);
    }
    t.render()
}

/// Table III: chosen GT and hit rate per app × scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Process count.
    pub nprocs: u32,
    /// Our selected grouping threshold, µs.
    pub gt_us: f64,
    /// Hit rate at the selected GT, %.
    pub hit_rate_pct: f64,
    /// The paper's chosen GT, µs.
    pub paper_gt_us: f64,
    /// The paper's hit rate, %.
    pub paper_hit_pct: f64,
}

/// Compute Table III (GT selection sweep per cell).
pub fn table3(seed: u64) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let procs = paper_ref::paper_procs(app);
        let gts = paper_ref::table3_gt(app);
        let hits = paper_ref::table3_hit(app);
        for i in 0..procs.len() {
            let trace = make_trace(app, procs[i], seed);
            let best = choose_gt(&trace, app, SELECT_DISPLACEMENT);
            rows.push(Table3Row {
                app: app.name().to_string(),
                nprocs: procs[i],
                gt_us: best.gt_us,
                hit_rate_pct: best.hit_rate_pct,
                paper_gt_us: gts[i],
                paper_hit_pct: hits[i],
            });
        }
    }
    rows
}

/// Render Table III with paper columns alongside.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut t = Table::new(&[
        "app", "N", "GT us", "hit %", "paper GT", "paper hit",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.nprocs.to_string(),
            f1(r.gt_us),
            f1(r.hit_rate_pct),
            f1(r.paper_gt_us),
            f1(r.paper_hit_pct),
        ]);
    }
    t.render()
}

/// Table IV: PPA overheads at 16 ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Application name.
    pub app: String,
    /// Calls on which the PPA ran, %.
    pub ppa_invoked_pct: f64,
    /// Overhead per PPA-invoking call, µs.
    pub overhead_per_invoked_us: f64,
    /// Overhead amortised over all calls, µs.
    pub overhead_per_call_us: f64,
    /// Paper's three values.
    pub paper: (f64, f64, f64),
}

/// Compute Table IV (16 ranks, selected GT, displacement 1%).
pub fn table4(seed: u64) -> Vec<Table4Row> {
    AppKind::ALL
        .iter()
        .map(|&app| {
            let trace = make_trace(app, 16, seed);
            let best = choose_gt(&trace, app, SELECT_DISPLACEMENT);
            let cfg = RunConfig::new(best.gt_us, SELECT_DISPLACEMENT);
            let r = crate::experiment::run_runtime_only(&trace, app, &cfg);
            Table4Row {
                app: app.name().to_string(),
                ppa_invoked_pct: r.stats.ppa_invocation_pct(),
                overhead_per_invoked_us: r.stats.overhead_per_invoked_call_us(),
                overhead_per_call_us: r.stats.overhead_per_call_us(),
                paper: paper_ref::table4(app),
            }
        })
        .collect()
}

/// Render Table IV.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut t = Table::new(&[
        "app", "PPA calls %", "(paper)", "us/invoked", "(paper)", "us/call", "(paper)",
    ]);
    let mut avg = (0.0, 0.0, 0.0);
    for r in rows {
        avg.0 += r.ppa_invoked_pct / rows.len() as f64;
        avg.1 += r.overhead_per_invoked_us / rows.len() as f64;
        avg.2 += r.overhead_per_call_us / rows.len() as f64;
        t.row(vec![
            r.app.clone(),
            f2(r.ppa_invoked_pct),
            f2(r.paper.0),
            f1(r.overhead_per_invoked_us),
            f1(r.paper.1),
            f2(r.overhead_per_call_us),
            f2(r.paper.2),
        ]);
    }
    t.row(vec![
        "average".into(),
        f2(avg.0),
        "2.10".into(),
        f1(avg.1),
        "16.5".into(),
        f2(avg.2),
        "1.30".into(),
    ]);
    t.render()
}

/// One figure (7, 8 or 9): savings and slowdown per app × scale at one
/// displacement factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureData {
    /// Displacement factor.
    pub displacement: f64,
    /// Per-app rows (5 scales each).
    pub rows: Vec<FigureRow>,
}

/// One application's series in a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Application name.
    pub app: String,
    /// Process counts.
    pub procs: Vec<u32>,
    /// GT used per scale (selected by sweep), µs.
    pub gt_us: Vec<f64>,
    /// Measured power savings, %.
    pub savings_pct: Vec<f64>,
    /// Measured execution-time increase, %.
    pub slowdown_pct: Vec<f64>,
    /// Paper's savings, %.
    pub paper_savings_pct: Vec<f64>,
    /// Paper's slowdown, %.
    pub paper_slowdown_pct: Vec<f64>,
}

/// Run one full figure: GT selection + double replay per cell.
pub fn figure(displacement: f64, seed: u64) -> FigureData {
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let procs = paper_ref::paper_procs(app);
        let mut row = FigureRow {
            app: app.name().to_string(),
            procs: procs.to_vec(),
            gt_us: Vec::new(),
            savings_pct: Vec::new(),
            slowdown_pct: Vec::new(),
            paper_savings_pct: paper_ref::savings(app, displacement).to_vec(),
            paper_slowdown_pct: if displacement <= 0.02 {
                paper_ref::slowdown_disp1(app).to_vec()
            } else {
                Vec::new()
            },
        };
        for &n in &procs {
            let trace = make_trace(app, n, seed);
            let best = choose_gt(&trace, app, SELECT_DISPLACEMENT);
            let cfg = RunConfig::new(best.gt_us, displacement);
            let r: RunResult = run_on_trace(&trace, app, &cfg);
            row.gt_us.push(best.gt_us);
            row.savings_pct.push(r.power_saving_pct);
            row.slowdown_pct.push(r.slowdown_pct);
        }
        rows.push(row);
    }
    FigureData {
        displacement,
        rows,
    }
}

/// Render a figure as two tables (savings, slowdown) with the AVERAGE
/// series the paper plots.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = format!(
        "== Power savings in IB switches [%], displacement {:.0}% ==\n",
        fig.displacement * 100.0
    );
    let mut t = Table::new(&["app", "8/9", "16", "32/36", "64", "128/100"]);
    let napps = fig.rows.len() as f64;
    let mut avg = [0.0; 5];
    let mut paper_avg = [0.0; 5];
    for row in &fig.rows {
        let mut cells = vec![row.app.clone()];
        for i in 0..5 {
            avg[i] += row.savings_pct[i] / napps;
            paper_avg[i] += row.paper_savings_pct[i] / napps;
            cells.push(format!(
                "{:.1} ({:.1})",
                row.savings_pct[i], row.paper_savings_pct[i]
            ));
        }
        t.row(cells);
    }
    let mut cells = vec!["AVERAGE".to_string()];
    for i in 0..5 {
        cells.push(format!("{:.1} ({:.1})", avg[i], paper_avg[i]));
    }
    t.row(cells);
    out.push_str(&t.render());

    out.push_str(&format!(
        "\n== Execution time increase [%], displacement {:.0}% ==\n",
        fig.displacement * 100.0
    ));
    let mut t = Table::new(&["app", "8/9", "16", "32/36", "64", "128/100"]);
    let mut avg = [0.0; 5];
    for row in &fig.rows {
        let mut cells = vec![row.app.clone()];
        for (i, a) in avg.iter_mut().enumerate() {
            *a += row.slowdown_pct[i] / napps;
            let cell = if row.paper_slowdown_pct.is_empty() {
                format!("{:.2}", row.slowdown_pct[i])
            } else {
                format!("{:.2} ({:.2})", row.slowdown_pct[i], row.paper_slowdown_pct[i])
            };
            cells.push(cell);
        }
        t.row(cells);
    }
    let mut cells = vec!["AVERAGE".to_string()];
    for a in &avg {
        cells.push(format!("{a:.2}"));
    }
    t.row(cells);
    out.push_str(&t.render());
    out
}

/// Fig. 10 data: GT sweep hit-rate curves for GROMACS at 64 and 128.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Data {
    /// (nprocs, sweep points) per curve.
    pub curves: Vec<(u32, Vec<GtPoint>)>,
}

/// Compute Fig. 10.
pub fn fig10(seed: u64) -> Fig10Data {
    let curves = [64u32, 128]
        .iter()
        .map(|&n| {
            let trace = make_trace(AppKind::Gromacs, n, seed);
            (n, sweep(&trace, AppKind::Gromacs, SELECT_DISPLACEMENT))
        })
        .collect();
    Fig10Data { curves }
}

/// Render Fig. 10 as a table plus ASCII curves.
pub fn render_fig10(data: &Fig10Data) -> String {
    let mut out = String::from(
        "== Fig. 10: correctly predicted MPI calls vs grouping threshold (GROMACS) ==\n",
    );
    let mut t = Table::new(&["GT us", "hit% @64", "hit% @128"]);
    let (c64, c128) = (&data.curves[0].1, &data.curves[1].1);
    for (a, b) in c64.iter().zip(c128) {
        t.row(vec![f1(a.gt_us), f1(a.hit_rate_pct), f1(b.hit_rate_pct)]);
    }
    out.push_str(&t.render());
    for (n, curve) in &data.curves {
        out.push_str(&format!("\n{n} processes:\n"));
        for p in curve {
            let bar = "#".repeat((p.hit_rate_pct / 2.0).round() as usize);
            out.push_str(&format!("{:>6.0} |{bar} {:.1}%\n", p.gt_us, p.hit_rate_pct));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_25_rows() {
        // Uses the real (full-length) generators; keep to one seed.
        let rows = table1(SEED);
        assert_eq!(rows.len(), 25);
        // Every row: percentages of intervals sum to ~100 when non-empty.
        for r in &rows {
            let s =
                r.idle.short.interval_pct + r.idle.medium.interval_pct + r.idle.long.interval_pct;
            assert!((s - 100.0).abs() < 1e-6, "{} @{}: {s}", r.app, r.nprocs);
        }
        let text = render_table1(&rows);
        assert!(text.contains("alya"));
        assert_eq!(text.lines().count(), 27);
    }

    #[test]
    fn figure_renderer_shapes() {
        // Synthetic figure data: rendering must include the AVERAGE row
        // and paper comparisons.
        let fig = FigureData {
            displacement: 0.01,
            rows: vec![FigureRow {
                app: "alya".into(),
                procs: vec![8, 16, 32, 64, 128],
                gt_us: vec![20.0; 5],
                savings_pct: vec![15.0, 13.0, 9.0, 5.0, 2.0],
                slowdown_pct: vec![0.1; 5],
                paper_savings_pct: vec![14.5, 12.6, 8.9, 5.2, 2.3],
                paper_slowdown_pct: vec![0.01, 0.03, 0.06, 0.11, 0.13],
            }],
        };
        let text = render_figure(&fig);
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("15.0 (14.5)"));
        assert!(text.contains("Execution time increase"));
    }
}
