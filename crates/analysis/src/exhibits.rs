//! Assembly of the paper's tables and figures from experiment runs.
//!
//! Each function produces both the data (serialisable) and a rendered
//! text block; the binaries print the text and dump the JSON next to it.

use crate::experiment::{run_runtime_only_jobs, run_with_baseline_jobs, RunConfig, RunResult};
use crate::gt_select::{sweep, GtPoint};
use crate::paper_ref;
use crate::report::{f1, f2, Table};
use crate::sweep::{CellKey, SweepEngine};
use ibp_trace::IdleDistribution;
use ibp_workloads::AppKind;
use serde::{Deserialize, Serialize};

/// Default experiment seed (all exhibits share it; the workloads are
/// deterministic in it).
pub const SEED: u64 = 0xD1C0;

/// Displacement used for GT selection (the paper's best case, 1%).
pub const SELECT_DISPLACEMENT: f64 = 0.01;

/// Which slice of the paper's `app × nprocs` grid an exhibit covers.
///
/// The full paper grid (`ExhibitGrid::paper()`) is what the binaries
/// run; the golden-exhibit regression suite runs a capped grid
/// (`ExhibitGrid::capped(16)`) so the snapshots stay cheap enough for
/// debug-profile CI while still pinning every metric the engine can
/// perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhibitGrid {
    /// Keep only process counts `<=` this bound (`None` = full grid).
    pub max_procs: Option<u32>,
}

impl ExhibitGrid {
    /// The paper's full grid (5 scales per application).
    pub fn paper() -> Self {
        ExhibitGrid { max_procs: None }
    }

    /// The grid restricted to process counts `<= cap`.
    pub fn capped(cap: u32) -> Self {
        ExhibitGrid {
            max_procs: Some(cap),
        }
    }

    /// The process counts this grid evaluates `app` at.
    pub fn procs(&self, app: AppKind) -> Vec<u32> {
        paper_ref::paper_procs(app)
            .iter()
            .copied()
            .filter(|&n| self.max_procs.is_none_or(|cap| n <= cap))
            .collect()
    }

    /// The flat `(app, nprocs)` cell list in the paper's presentation
    /// order (the deterministic result order of every exhibit).
    pub fn cells(&self, seed: u64) -> Vec<CellKey> {
        AppKind::ALL
            .iter()
            .flat_map(|&app| {
                self.procs(app)
                    .into_iter()
                    .map(move |n| CellKey::new(app, n, seed))
            })
            .collect()
    }
}

/// Table I: idle-interval distribution rows for every app × scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Process count.
    pub nprocs: u32,
    /// The three-bucket distribution.
    pub idle: IdleDistribution,
}

/// Compute Table I on `grid` (cells run on the engine's pool; rows come
/// back in grid order regardless of completion order).
pub fn table1(engine: &SweepEngine, grid: &ExhibitGrid, seed: u64) -> Vec<Table1Row> {
    let cells = grid.cells(seed);
    engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| Table1Row {
            app: key.app.name().to_string(),
            nprocs: key.nprocs,
            idle: IdleDistribution::from_trace(&ctx.trace),
        },
    )
}

/// Render Table I like the paper (counts, % of intervals, % of idle time
/// per bucket).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut t = Table::new(&[
        "app", "N", "<20us n", "<20us %", "<20us t%", "20-200 n", "20-200 %", "20-200 t%",
        ">200 n", ">200 %", ">200 t%",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.nprocs.to_string(),
            r.idle.short.intervals.to_string(),
            f2(r.idle.short.interval_pct),
            f2(r.idle.short.time_pct),
            r.idle.medium.intervals.to_string(),
            f2(r.idle.medium.interval_pct),
            f2(r.idle.medium.time_pct),
            r.idle.long.intervals.to_string(),
            f2(r.idle.long.interval_pct),
            f2(r.idle.long.time_pct),
        ]);
    }
    t.render()
}

/// Table III: chosen GT and hit rate per app × scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Application name.
    pub app: String,
    /// Process count.
    pub nprocs: u32,
    /// Our selected grouping threshold, µs.
    pub gt_us: f64,
    /// Hit rate at the selected GT, %.
    pub hit_rate_pct: f64,
    /// The paper's chosen GT, µs.
    pub paper_gt_us: f64,
    /// The paper's hit rate, %.
    pub paper_hit_pct: f64,
}

/// Compute Table III (GT selection sweep per cell) on `grid`.
pub fn table3(engine: &SweepEngine, grid: &ExhibitGrid, seed: u64) -> Vec<Table3Row> {
    let cells = grid.cells(seed);
    engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let best = ctx.choose_gt(SELECT_DISPLACEMENT);
            // The paper columns are indexed by the cell's position in
            // the *full* paper grid, even on a capped grid.
            let full = paper_ref::paper_procs(key.app);
            let i = full
                .iter()
                .position(|&n| n == key.nprocs)
                .expect("grid cell comes from the paper's proc list");
            Table3Row {
                app: key.app.name().to_string(),
                nprocs: key.nprocs,
                gt_us: best.gt_us,
                hit_rate_pct: best.hit_rate_pct,
                paper_gt_us: paper_ref::table3_gt(key.app)[i],
                paper_hit_pct: paper_ref::table3_hit(key.app)[i],
            }
        },
    )
}

/// Render Table III with paper columns alongside.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut t = Table::new(&[
        "app", "N", "GT us", "hit %", "paper GT", "paper hit",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.nprocs.to_string(),
            f1(r.gt_us),
            f1(r.hit_rate_pct),
            f1(r.paper_gt_us),
            f1(r.paper_hit_pct),
        ]);
    }
    t.render()
}

/// Table IV: PPA overheads at 16 ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Application name.
    pub app: String,
    /// Calls on which the PPA ran, %.
    pub ppa_invoked_pct: f64,
    /// Overhead per PPA-invoking call, µs.
    pub overhead_per_invoked_us: f64,
    /// Overhead amortised over all calls, µs.
    pub overhead_per_call_us: f64,
    /// Paper's three values.
    pub paper: (f64, f64, f64),
}

/// Compute Table IV (16 ranks, selected GT, displacement 1%).
pub fn table4(engine: &SweepEngine, seed: u64) -> Vec<Table4Row> {
    let cells: Vec<CellKey> = AppKind::ALL
        .iter()
        .map(|&app| CellKey::new(app, 16, seed))
        .collect();
    engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let best = ctx.choose_gt(SELECT_DISPLACEMENT);
            let cfg = RunConfig::new(best.gt_us, SELECT_DISPLACEMENT);
            let r = run_runtime_only_jobs(&ctx.trace, key.app, &cfg, ctx.rank_jobs);
            Table4Row {
                app: key.app.name().to_string(),
                ppa_invoked_pct: r.stats.ppa_invocation_pct(),
                overhead_per_invoked_us: r.stats.overhead_per_invoked_call_us(),
                overhead_per_call_us: r.stats.overhead_per_call_us(),
                paper: paper_ref::table4(key.app),
            }
        },
    )
}

/// Render Table IV.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut t = Table::new(&[
        "app", "PPA calls %", "(paper)", "us/invoked", "(paper)", "us/call", "(paper)",
    ]);
    let mut avg = (0.0, 0.0, 0.0);
    for r in rows {
        avg.0 += r.ppa_invoked_pct / rows.len() as f64;
        avg.1 += r.overhead_per_invoked_us / rows.len() as f64;
        avg.2 += r.overhead_per_call_us / rows.len() as f64;
        t.row(vec![
            r.app.clone(),
            f2(r.ppa_invoked_pct),
            f2(r.paper.0),
            f1(r.overhead_per_invoked_us),
            f1(r.paper.1),
            f2(r.overhead_per_call_us),
            f2(r.paper.2),
        ]);
    }
    t.row(vec![
        "average".into(),
        f2(avg.0),
        "2.10".into(),
        f1(avg.1),
        "16.5".into(),
        f2(avg.2),
        "1.30".into(),
    ]);
    t.render()
}

/// One figure (7, 8 or 9): savings and slowdown per app × scale at one
/// displacement factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureData {
    /// Displacement factor.
    pub displacement: f64,
    /// Per-app rows (5 scales each).
    pub rows: Vec<FigureRow>,
}

/// One application's series in a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Application name.
    pub app: String,
    /// Process counts.
    pub procs: Vec<u32>,
    /// GT used per scale (selected by sweep), µs.
    pub gt_us: Vec<f64>,
    /// Measured power savings, %.
    pub savings_pct: Vec<f64>,
    /// Measured execution-time increase, %.
    pub slowdown_pct: Vec<f64>,
    /// Paper's savings, %.
    pub paper_savings_pct: Vec<f64>,
    /// Paper's slowdown, %.
    pub paper_slowdown_pct: Vec<f64>,
}

/// Run one full figure on `grid`: GT selection + managed replay per
/// cell, with the baseline replay shared through the engine's cache.
pub fn figure(
    engine: &SweepEngine,
    grid: &ExhibitGrid,
    displacement: f64,
    seed: u64,
) -> FigureData {
    let cells = grid.cells(seed);
    let measured: Vec<(f64, RunResult)> = engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let best = ctx.choose_gt(SELECT_DISPLACEMENT);
            let cfg = RunConfig::new(best.gt_us, displacement);
            let r = run_with_baseline_jobs(&ctx.trace, key.app, &cfg, &ctx.baseline(), ctx.rank_jobs);
            (best.gt_us, r)
        },
    );

    // Group the flat, grid-ordered cell results back into per-app rows.
    let mut rows = Vec::new();
    let mut flat = cells.iter().zip(measured);
    for app in AppKind::ALL {
        let procs = grid.procs(app);
        let full = paper_ref::paper_procs(app);
        let indices: Vec<usize> = procs
            .iter()
            .map(|&n| full.iter().position(|&m| m == n).expect("paper proc"))
            .collect();
        let mut row = FigureRow {
            app: app.name().to_string(),
            procs: procs.clone(),
            gt_us: Vec::new(),
            savings_pct: Vec::new(),
            slowdown_pct: Vec::new(),
            paper_savings_pct: indices
                .iter()
                .map(|&i| paper_ref::savings(app, displacement)[i])
                .collect(),
            paper_slowdown_pct: if displacement <= 0.02 {
                indices
                    .iter()
                    .map(|&i| paper_ref::slowdown_disp1(app)[i])
                    .collect()
            } else {
                Vec::new()
            },
        };
        for _ in &procs {
            let (key, (gt, r)) = flat.next().expect("one result per grid cell");
            debug_assert_eq!(key.app, app);
            row.gt_us.push(gt);
            row.savings_pct.push(r.power_saving_pct);
            row.slowdown_pct.push(r.slowdown_pct);
        }
        rows.push(row);
    }
    FigureData {
        displacement,
        rows,
    }
}

/// Render a figure as two tables (savings, slowdown) with the AVERAGE
/// series the paper plots.
pub fn render_figure(fig: &FigureData) -> String {
    // Column labels for the paper's scale axis; a capped grid (the
    // golden suite) renders a prefix of them.
    const SCALE_LABELS: [&str; 5] = ["8/9", "16", "32/36", "64", "128/100"];
    let ncols = fig
        .rows
        .iter()
        .map(|r| r.procs.len())
        .max()
        .unwrap_or(0)
        .min(SCALE_LABELS.len());
    let mut header = vec!["app"];
    header.extend_from_slice(&SCALE_LABELS[..ncols]);

    let mut out = format!(
        "== Power savings in IB switches [%], displacement {:.0}% ==\n",
        fig.displacement * 100.0
    );
    let mut t = Table::new(&header);
    let napps = fig.rows.len() as f64;
    let mut avg = vec![0.0; ncols];
    let mut paper_avg = vec![0.0; ncols];
    for row in &fig.rows {
        let mut cells = vec![row.app.clone()];
        for i in 0..ncols {
            avg[i] += row.savings_pct[i] / napps;
            paper_avg[i] += row.paper_savings_pct[i] / napps;
            cells.push(format!(
                "{:.1} ({:.1})",
                row.savings_pct[i], row.paper_savings_pct[i]
            ));
        }
        t.row(cells);
    }
    let mut cells = vec!["AVERAGE".to_string()];
    for i in 0..ncols {
        cells.push(format!("{:.1} ({:.1})", avg[i], paper_avg[i]));
    }
    t.row(cells);
    out.push_str(&t.render());

    out.push_str(&format!(
        "\n== Execution time increase [%], displacement {:.0}% ==\n",
        fig.displacement * 100.0
    ));
    let mut t = Table::new(&header);
    let mut avg = vec![0.0; ncols];
    for row in &fig.rows {
        let mut cells = vec![row.app.clone()];
        for (i, a) in avg.iter_mut().enumerate() {
            *a += row.slowdown_pct[i] / napps;
            let cell = if row.paper_slowdown_pct.is_empty() {
                format!("{:.2}", row.slowdown_pct[i])
            } else {
                format!("{:.2} ({:.2})", row.slowdown_pct[i], row.paper_slowdown_pct[i])
            };
            cells.push(cell);
        }
        t.row(cells);
    }
    let mut cells = vec!["AVERAGE".to_string()];
    for a in &avg {
        cells.push(format!("{a:.2}"));
    }
    t.row(cells);
    out.push_str(&t.render());
    out
}

/// Fig. 10 data: GT sweep hit-rate curves for GROMACS at 64 and 128.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Data {
    /// (nprocs, sweep points) per curve.
    pub curves: Vec<(u32, Vec<GtPoint>)>,
}

/// Compute Fig. 10.
pub fn fig10(engine: &SweepEngine, seed: u64) -> Fig10Data {
    let cells: Vec<CellKey> = [64u32, 128]
        .iter()
        .map(|&n| CellKey::new(AppKind::Gromacs, n, seed))
        .collect();
    let curves = engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            (
                key.nprocs,
                sweep(&ctx.trace, AppKind::Gromacs, SELECT_DISPLACEMENT),
            )
        },
    );
    Fig10Data { curves }
}

/// Render Fig. 10 as a table plus ASCII curves.
pub fn render_fig10(data: &Fig10Data) -> String {
    let mut out = String::from(
        "== Fig. 10: correctly predicted MPI calls vs grouping threshold (GROMACS) ==\n",
    );
    let mut t = Table::new(&["GT us", "hit% @64", "hit% @128"]);
    let (c64, c128) = (&data.curves[0].1, &data.curves[1].1);
    for (a, b) in c64.iter().zip(c128) {
        t.row(vec![f1(a.gt_us), f1(a.hit_rate_pct), f1(b.hit_rate_pct)]);
    }
    out.push_str(&t.render());
    for (n, curve) in &data.curves {
        out.push_str(&format!("\n{n} processes:\n"));
        for p in curve {
            let bar = "#".repeat((p.hit_rate_pct / 2.0).round() as usize);
            out.push_str(&format!("{:>6.0} |{bar} {:.1}%\n", p.gt_us, p.hit_rate_pct));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_25_rows() {
        // Uses the real (full-length) generators; keep to one seed.
        let engine = SweepEngine::new(crate::sweep::SweepOptions::default());
        let rows = table1(&engine, &ExhibitGrid::paper(), SEED);
        assert_eq!(rows.len(), 25);
        // Every row: percentages of intervals sum to ~100 when non-empty.
        for r in &rows {
            let s =
                r.idle.short.interval_pct + r.idle.medium.interval_pct + r.idle.long.interval_pct;
            assert!((s - 100.0).abs() < 1e-6, "{} @{}: {s}", r.app, r.nprocs);
        }
        let text = render_table1(&rows);
        assert!(text.contains("alya"));
        assert_eq!(text.lines().count(), 27);
    }

    #[test]
    fn figure_renderer_shapes() {
        // Synthetic figure data: rendering must include the AVERAGE row
        // and paper comparisons.
        let fig = FigureData {
            displacement: 0.01,
            rows: vec![FigureRow {
                app: "alya".into(),
                procs: vec![8, 16, 32, 64, 128],
                gt_us: vec![20.0; 5],
                savings_pct: vec![15.0, 13.0, 9.0, 5.0, 2.0],
                slowdown_pct: vec![0.1; 5],
                paper_savings_pct: vec![14.5, 12.6, 8.9, 5.2, 2.3],
                paper_slowdown_pct: vec![0.01, 0.03, 0.06, 0.11, 0.13],
            }],
        };
        let text = render_figure(&fig);
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("15.0 (14.5)"));
        assert!(text.contains("Execution time increase"));
    }
}
