//! Grouping-threshold evaluation and selection (Table III, Fig. 10).
//!
//! The paper evaluates PPA prediction quality across a range of GT values
//! (Fig. 10 shows the GROMACS curves) and picks, per application and
//! scale, the GT that maximises correct prediction while not grouping
//! away the exploitable idle intervals (Table III). We sweep the same
//! range with the runtime-only pass (no network replay needed) and select
//! by the quick power-saving estimate, which penalises both failure
//! modes: mispredictions (low coverage) and over-grouping (idle windows
//! swallowed into grams). Hit rate breaks ties.

use crate::experiment::{run_runtime_only, RunConfig, RunResult};
use ibp_trace::Trace;
use ibp_workloads::AppKind;
use serde::{Deserialize, Serialize};

/// The GT grid swept, in µs. Starts at the legal minimum `2·T_react`
/// and covers the paper's Fig. 10 range (up to 400 µs), including every
/// value Table III reports.
pub const GT_GRID_US: &[f64] = &[
    20.0, 22.0, 26.0, 30.0, 36.0, 46.0, 50.0, 56.0, 72.0, 100.0, 136.0, 150.0, 186.0, 222.0,
    260.0, 290.0, 300.0, 340.0, 382.0, 400.0,
];

/// One sweep point (one GT value on one trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GtPoint {
    /// Grouping threshold, µs.
    pub gt_us: f64,
    /// Correctly predicted MPI calls, %.
    pub hit_rate_pct: f64,
    /// Quick power-saving estimate, %.
    pub est_saving_pct: f64,
}

/// Sweep the GT grid over one trace (runtime pass only).
pub fn sweep(trace: &Trace, app: AppKind, displacement: f64) -> Vec<GtPoint> {
    GT_GRID_US
        .iter()
        .map(|&gt| {
            let cfg = RunConfig::new(gt, displacement);
            let r: RunResult = run_runtime_only(trace, app, &cfg);
            GtPoint {
                gt_us: gt,
                hit_rate_pct: r.hit_rate_pct,
                est_saving_pct: r.est_saving_pct,
            }
        })
        .collect()
}

/// Select the best GT from a sweep: maximise the saving estimate, break
/// ties by hit rate, then by the smaller threshold.
pub fn select(points: &[GtPoint]) -> &GtPoint {
    points
        .iter()
        .max_by(|a, b| {
            a.est_saving_pct
                .partial_cmp(&b.est_saving_pct)
                .unwrap()
                .then(a.hit_rate_pct.partial_cmp(&b.hit_rate_pct).unwrap())
                .then(b.gt_us.partial_cmp(&a.gt_us).unwrap())
        })
        .expect("non-empty sweep")
}

/// Sweep + select in one step for an application at one scale.
pub fn choose_gt(trace: &Trace, app: AppKind, displacement: f64) -> GtPoint {
    let points = sweep(trace, app, displacement);
    select(&points).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_workloads::Workload;

    fn small_alya(n: u32) -> Trace {
        let alya = ibp_workloads::Alya {
            iterations: 40,
            ..Default::default()
        };
        alya.generate(n, 5)
    }

    #[test]
    fn sweep_covers_grid() {
        let t = small_alya(8);
        let pts = sweep(&t, AppKind::Alya, 0.01);
        assert_eq!(pts.len(), GT_GRID_US.len());
        assert!(pts.iter().all(|p| p.hit_rate_pct >= 0.0));
    }

    #[test]
    fn grid_starts_at_legal_minimum() {
        assert_eq!(GT_GRID_US[0], 20.0);
        assert!(GT_GRID_US.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn selection_maximises_estimate() {
        let t = small_alya(8);
        let pts = sweep(&t, AppKind::Alya, 0.01);
        let best = select(&pts);
        assert!(pts.iter().all(|p| p.est_saving_pct <= best.est_saving_pct));
        // ALYA at 8 ranks saves meaningfully at its best GT.
        assert!(best.est_saving_pct > 20.0, "{:?}", best);
    }

    #[test]
    fn over_grouping_hurts_alya() {
        // A 400 µs GT at 8 ranks swallows ALYA's solver gaps (600 µs
        // survives, but the structure coarsens): the estimate at GT=400
        // must not beat the selected one.
        let t = small_alya(8);
        let pts = sweep(&t, AppKind::Alya, 0.01);
        let best = select(&pts);
        let last = pts.last().unwrap();
        assert!(last.est_saving_pct <= best.est_saving_pct);
    }
}
