//! The paper's §VI conjecture: the mechanism benefits more under weak
//! scaling (per-rank work fixed) than under the evaluated strong scaling.
use ibp_analysis::extensions::{render_weak_scaling, weak_scaling_study};
use ibp_workloads::AppKind;

fn main() {
    println!("== Strong vs weak scaling: IB switch power savings [%] ==\n");
    let rows: Vec<_> = AppKind::ALL
        .iter()
        .map(|&app| weak_scaling_study(app, 0xD1C0))
        .collect();
    print!("{}", render_weak_scaling(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/weak_scaling.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
