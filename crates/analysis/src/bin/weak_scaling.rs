//! The paper's §VI conjecture: the mechanism benefits more under weak
//! scaling (per-rank work fixed) than under the evaluated strong scaling.
use ibp_analysis::extensions::{render_weak_scaling, weak_scaling_study};
use ibp_analysis::{bin_main, OutputDir, SweepEngine};
use ibp_workloads::AppKind;

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        println!("== Strong vs weak scaling: IB switch power savings [%] ==\n");
        let rows: Vec<_> = AppKind::ALL
            .iter()
            .map(|&app| weak_scaling_study(&engine, app, 0xD1C0))
            .collect();
        print!("{}", render_weak_scaling(&rows));
        out.write_json("weak_scaling.json", &rows)?;
        out.write_stats("weak_scaling", &engine.stats())?;
        Ok(())
    });
}
