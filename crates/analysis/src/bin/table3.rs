//! Table III reproduction: chosen grouping thresholds and hit rates.
use ibp_analysis::exhibits::{render_table3, table3, SEED};
use ibp_analysis::{bin_main, ExhibitGrid, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let rows = table3(&engine, &ExhibitGrid::paper(), SEED);
        println!("== Table III: chosen GT across HPC applications ==");
        print!("{}", render_table3(&rows));
        out.write_json("table3.json", &rows)?;
        out.write_stats("table3", &engine.stats())?;
        Ok(())
    });
}
