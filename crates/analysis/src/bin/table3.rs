//! Table III reproduction: chosen grouping thresholds and hit rates.
use ibp_analysis::exhibits::{render_table3, table3, SEED};

fn main() {
    let rows = table3(SEED);
    println!("== Table III: chosen GT across HPC applications ==");
    print!("{}", render_table3(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/table3.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
