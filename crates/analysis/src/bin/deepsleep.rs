//! The paper's §VI future work: deep switch sleep (buffers/crossbar down,
//! millisecond reactivation) for long predicted idles, on top of WRPS.
use ibp_analysis::extensions::{deep_sleep_study, render_deep_sleep};
use ibp_simcore::SimDuration;

fn main() {
    let nprocs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let threshold = SimDuration::from_ms(5);
    println!("== Deep-sleep extension at {nprocs} ranks (threshold {threshold}) ==");
    println!("deep state: 1 ms reactivation, 10% draw; WRPS: 10 us, 43% draw\n");
    let rows = deep_sleep_study(nprocs, threshold, 0xD1C0);
    print!("{}", render_deep_sleep(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/deepsleep.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
