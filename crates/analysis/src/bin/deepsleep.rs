//! The paper's §VI future work: deep switch sleep (buffers/crossbar down,
//! millisecond reactivation) for long predicted idles, on top of WRPS.
use ibp_analysis::extensions::{deep_sleep_study, render_deep_sleep};
use ibp_analysis::{bin_main, OutputDir, SweepEngine};
use ibp_simcore::SimDuration;

fn main() {
    bin_main(|opts, args| {
        let out = OutputDir::default_dir()?;
        let nprocs: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(8);
        let threshold = SimDuration::from_ms(5);
        let engine = SweepEngine::new(opts);
        println!("== Deep-sleep extension at {nprocs} ranks (threshold {threshold}) ==");
        println!("deep state: 1 ms reactivation, 10% draw; WRPS: 10 us, 43% draw\n");
        let rows = deep_sleep_study(&engine, nprocs, threshold, 0xD1C0);
        print!("{}", render_deep_sleep(&rows));
        out.write_json("deepsleep.json", &rows)?;
        out.write_stats("deepsleep", &engine.stats())?;
        Ok(())
    });
}
