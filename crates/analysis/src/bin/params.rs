//! Table II reproduction: print the simulation parameters.
fn main() {
    println!("== Table II: parameters used in simulations ==");
    println!("{}", ibp_network::SimParams::paper().describe());
}
