//! Fig. 8 reproduction: power savings and execution-time increase at
//! displacement factor 0.05.
use ibp_analysis::exhibits::{figure, render_figure, SEED};

fn main() {
    let fig = figure(0.05, SEED);
    println!("== Fig. 8 (displacement {:.0}%) ==", 0.05 * 100.0);
    print!("{}", render_figure(&fig));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig8.json",
        serde_json::to_string_pretty(&fig).unwrap(),
    )
    .ok();
    std::fs::write(
        "results/fig8.svg",
        ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Light),
    )
    .ok();
    std::fs::write(
        "results/fig8-dark.svg",
        ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Dark),
    )
    .ok();
}
