//! Fig. 8 reproduction: power savings and execution-time increase at
//! displacement factor 0.05.
use ibp_analysis::exhibits::{figure, render_figure, SEED};
use ibp_analysis::{bin_main, ExhibitGrid, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let fig = figure(&engine, &ExhibitGrid::paper(), 0.05, SEED);
        println!("== Fig. 8 (displacement {:.0}%) ==", 0.05 * 100.0);
        print!("{}", render_figure(&fig));
        out.write_json("fig8.json", &fig)?;
        out.write_text(
            "fig8.svg",
            &ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Light),
        )?;
        out.write_text(
            "fig8-dark.svg",
            &ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Dark),
        )?;
        out.write_stats("fig8", &engine.stats())?;
        Ok(())
    });
}
