//! Fault injection: replay ALYA under rising link fault rates (wake
//! misfires, flaps, 1X degrades), with and without the resilience
//! controller, and emit `results/fault_tolerance.json`.
use ibp_analysis::extensions::{fault_tolerance_study, render_fault_tolerance};

fn main() {
    let nprocs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1C0);
    println!("== Fault tolerance: ALYA at {nprocs} ranks under link fault injection ==");
    println!("(slowdowns vs a power-unaware baseline under the same faults; seed {seed:#x})\n");
    let rows = fault_tolerance_study(nprocs, seed);
    print!("{}", render_fault_tolerance(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fault_tolerance.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
