//! Fault injection: replay ALYA under rising link fault rates (wake
//! misfires, flaps, 1X degrades), with and without the resilience
//! controller, and emit `fault_tolerance.json`.
use ibp_analysis::extensions::{fault_tolerance_study, render_fault_tolerance};
use ibp_analysis::{bin_main, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, args| {
        let out = OutputDir::default_dir()?;
        let nprocs: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xD1C0);
        let engine = SweepEngine::new(opts);
        println!("== Fault tolerance: ALYA at {nprocs} ranks under link fault injection ==");
        println!("(slowdowns vs a power-unaware baseline under the same faults; seed {seed:#x})\n");
        let rows = fault_tolerance_study(&engine, nprocs, seed);
        print!("{}", render_fault_tolerance(&rows));
        out.write_json("fault_tolerance.json", &rows)?;
        out.write_stats("fault_tolerance", &engine.stats())?;
        Ok(())
    });
}
