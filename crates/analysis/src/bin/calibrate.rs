//! Calibration probe: full pipeline on every app × scale at a default GT,
//! printing replay savings / slowdown / hit rate next to the paper's
//! numbers. Used while tuning workload-generator constants.

use ibp_analysis::{bin_main, paper_ref, run_with_baseline, CellKey, RunConfig, SweepEngine};
use ibp_workloads::AppKind;

fn main() {
    bin_main(|opts, args| {
        let only: Option<&str> = args.first().map(|s| s.as_str());
        let disp = 0.01;
        let engine = SweepEngine::new(opts);
        let cells: Vec<(AppKind, usize)> = AppKind::ALL
            .into_iter()
            .filter(|app| only.is_none_or(|o| app.name() == o))
            .flat_map(|app| (0..5).map(move |i| (app, i)))
            .collect();
        let rows = engine.run_cells(
            &cells,
            |&(app, i)| CellKey::new(app, paper_ref::paper_procs(app)[i], 0xD1C0),
            |ctx, &(app, i), _| {
                let cfg = RunConfig::new(paper_ref::table3_gt(app)[i], disp);
                run_with_baseline(&ctx.trace, app, &cfg, &ctx.baseline())
            },
        );
        println!("app        n    GTus  hit%  sav%  (paper)  slow%  (paper)  est%");
        for (&(app, i), r) in cells.iter().zip(&rows) {
            let procs = paper_ref::paper_procs(app);
            let gts = paper_ref::table3_gt(app);
            let ps = paper_ref::savings_disp1(app);
            let sl = paper_ref::slowdown_disp1(app);
            let ph = paper_ref::table3_hit(app);
            println!(
                "{:<9} {:>4} {:>6} {:>5.1} {:>5.1}  ({:>5.1})  {:>5.2}  ({:>5.2})  {:>5.1}   [paper hit {:.0}]",
                app.name(), procs[i], gts[i], r.hit_rate_pct, r.power_saving_pct, ps[i],
                r.slowdown_pct, sl[i], r.est_saving_pct, ph[i]
            );
        }
        Ok(())
    });
}
