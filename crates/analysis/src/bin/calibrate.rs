//! Calibration probe: full pipeline on every app × scale at a default GT,
//! printing replay savings / slowdown / hit rate next to the paper's
//! numbers. Used while tuning workload-generator constants.

use ibp_analysis::{paper_ref, run, RunConfig};
use ibp_workloads::AppKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only: Option<&str> = args.get(1).map(|s| s.as_str());
    let disp = 0.01;
    println!("app        n    GTus  hit%  sav%  (paper)  slow%  (paper)  est%");
    for app in AppKind::ALL {
        if let Some(o) = only {
            if app.name() != o {
                continue;
            }
        }
        let procs = paper_ref::paper_procs(app);
        let gts = paper_ref::table3_gt(app);
        let ps = paper_ref::savings_disp1(app);
        let sl = paper_ref::slowdown_disp1(app);
        let ph = paper_ref::table3_hit(app);
        for i in 0..5 {
            let cfg = RunConfig::new(gts[i], disp);
            let r = run(app, procs[i], &cfg);
            println!(
                "{:<9} {:>4} {:>6} {:>5.1} {:>5.1}  ({:>5.1})  {:>5.2}  ({:>5.2})  {:>5.1}   [paper hit {:.0}]",
                app.name(), procs[i], gts[i], r.hit_rate_pct, r.power_saving_pct, ps[i],
                r.slowdown_pct, sl[i], r.est_saving_pct, ph[i]
            );
        }
    }
}
