//! Run every exhibit in sequence, writing text + JSON under `results/`.
use ibp_analysis::exhibits;

fn main() {
    std::fs::create_dir_all("results").ok();
    let mut summary = String::new();

    println!("[1/7] Table II (parameters)");
    let params = ibp_network::SimParams::paper().describe();
    summary.push_str(&format!("== Table II ==\n{params}\n\n"));

    println!("[2/7] Table I (idle intervals)");
    let t1 = exhibits::table1(exhibits::SEED);
    summary.push_str("== Table I ==\n");
    summary.push_str(&exhibits::render_table1(&t1));
    std::fs::write("results/table1.json", serde_json::to_string_pretty(&t1).unwrap()).ok();

    println!("[3/7] Table III (GT selection)");
    let t3 = exhibits::table3(exhibits::SEED);
    summary.push_str("\n== Table III ==\n");
    summary.push_str(&exhibits::render_table3(&t3));
    std::fs::write("results/table3.json", serde_json::to_string_pretty(&t3).unwrap()).ok();

    println!("[4/7] Table IV (PPA overheads)");
    let t4 = exhibits::table4(exhibits::SEED);
    summary.push_str("\n== Table IV ==\n");
    summary.push_str(&exhibits::render_table4(&t4));
    std::fs::write("results/table4.json", serde_json::to_string_pretty(&t4).unwrap()).ok();

    for (i, (name, disp)) in [("fig7", 0.10), ("fig8", 0.05), ("fig9", 0.01)]
        .iter()
        .enumerate()
    {
        println!("[{}/7] {} (displacement {:.0}%)", i + 5, name, disp * 100.0);
        let fig = exhibits::figure(*disp, exhibits::SEED);
        summary.push_str(&format!("\n== {name} ==\n"));
        summary.push_str(&exhibits::render_figure(&fig));
        std::fs::write(
            format!("results/{name}.json"),
            serde_json::to_string_pretty(&fig).unwrap(),
        )
        .ok();
        std::fs::write(
            format!("results/{name}.svg"),
            ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Light),
        )
        .ok();
        std::fs::write(
            format!("results/{name}-dark.svg"),
            ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Dark),
        )
        .ok();
    }

    println!("[7/7] Fig. 10 (GT sweep)");
    let f10 = exhibits::fig10(exhibits::SEED);
    summary.push('\n');
    summary.push_str(&exhibits::render_fig10(&f10));
    std::fs::write("results/fig10.json", serde_json::to_string_pretty(&f10).unwrap()).ok();
    std::fs::write(
        "results/fig10.svg",
        ibp_analysis::svg::fig10_svg(&f10, ibp_analysis::svg::Mode::Light),
    )
    .ok();
    std::fs::write(
        "results/fig10-dark.svg",
        ibp_analysis::svg::fig10_svg(&f10, ibp_analysis::svg::Mode::Dark),
    )
    .ok();

    std::fs::write("results/summary.txt", &summary).ok();
    println!("\nAll exhibits written to results/ (summary.txt holds everything).");
}
