//! Run every exhibit on one shared sweep engine, writing text + JSON
//! under the results directory. Sharing the engine means each unique
//! (app, nprocs, seed) trace is generated once and its baseline
//! replayed once for the whole batch; Table III's GT selections are
//! reused verbatim by Figs. 7–9.
//!
//! Any write failure aborts the run with a nonzero exit naming the
//! failing path — no more silently empty `results/` directories.
use ibp_analysis::exhibits::{self, SEED};
use ibp_analysis::{bin_main, ExhibitGrid, OutputDir, SweepEngine, SweepStats};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let grid = ExhibitGrid::paper();
        let mut summary = String::new();
        // Stats checkpoint: each exhibit's stats file records only the
        // work that exhibit added on top of the shared caches.
        let mut mark = SweepStats::default();
        let mut checkpoint = |engine: &SweepEngine| {
            let now = engine.stats();
            let delta = now.since(&mark);
            mark = now;
            delta
        };

        println!("[1/7] Table II (parameters)");
        let params = ibp_network::SimParams::paper().describe();
        summary.push_str(&format!("== Table II ==\n{params}\n\n"));

        println!("[2/7] Table I (idle intervals)");
        let t1 = exhibits::table1(&engine, &grid, SEED);
        summary.push_str("== Table I ==\n");
        summary.push_str(&exhibits::render_table1(&t1));
        out.write_json("table1.json", &t1)?;
        out.write_stats("table1", &checkpoint(&engine))?;

        println!("[3/7] Table III (GT selection)");
        let t3 = exhibits::table3(&engine, &grid, SEED);
        summary.push_str("\n== Table III ==\n");
        summary.push_str(&exhibits::render_table3(&t3));
        out.write_json("table3.json", &t3)?;
        out.write_stats("table3", &checkpoint(&engine))?;

        println!("[4/7] Table IV (PPA overheads)");
        let t4 = exhibits::table4(&engine, SEED);
        summary.push_str("\n== Table IV ==\n");
        summary.push_str(&exhibits::render_table4(&t4));
        out.write_json("table4.json", &t4)?;
        out.write_stats("table4", &checkpoint(&engine))?;

        for (i, (name, disp)) in [("fig7", 0.10), ("fig8", 0.05), ("fig9", 0.01)]
            .iter()
            .enumerate()
        {
            println!("[{}/7] {} (displacement {:.0}%)", i + 5, name, disp * 100.0);
            let fig = exhibits::figure(&engine, &grid, *disp, SEED);
            summary.push_str(&format!("\n== {name} ==\n"));
            summary.push_str(&exhibits::render_figure(&fig));
            out.write_json(&format!("{name}.json"), &fig)?;
            out.write_text(
                &format!("{name}.svg"),
                &ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Light),
            )?;
            out.write_text(
                &format!("{name}-dark.svg"),
                &ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Dark),
            )?;
            out.write_stats(name, &checkpoint(&engine))?;
        }

        println!("[7/7] Fig. 10 (GT sweep)");
        let f10 = exhibits::fig10(&engine, SEED);
        summary.push('\n');
        summary.push_str(&exhibits::render_fig10(&f10));
        out.write_json("fig10.json", &f10)?;
        out.write_text(
            "fig10.svg",
            &ibp_analysis::svg::fig10_svg(&f10, ibp_analysis::svg::Mode::Light),
        )?;
        out.write_text(
            "fig10-dark.svg",
            &ibp_analysis::svg::fig10_svg(&f10, ibp_analysis::svg::Mode::Dark),
        )?;
        out.write_stats("fig10", &checkpoint(&engine))?;

        out.write_text("summary.txt", &summary)?;
        out.write_stats("all", &engine.stats())?;
        let s = engine.stats();
        println!(
            "\nAll exhibits written to {} (summary.txt holds everything).",
            out.root().display()
        );
        println!(
            "sweep: {} cells on {} job(s) in {:.1}s — {} traces generated ({} cache hits), \
             {} baselines ({} hits), {} GT selections ({} hits)",
            s.cells,
            s.jobs,
            s.wall_ms as f64 / 1000.0,
            s.traces_generated,
            s.trace_hits,
            s.baselines_computed,
            s.baseline_hits,
            s.gt_selections,
            s.gt_hits,
        );
        Ok(())
    });
}
