//! Failure injection: amplify compute jitter on ALYA and measure how the
//! mechanism degrades (hit rate, savings, late wake-ups, slowdown).
use ibp_analysis::extensions::{render_robustness, robustness_study};
use ibp_analysis::{bin_main, OutputDir};

fn main() {
    bin_main(|opts, args| {
        let out = OutputDir::default_dir()?;
        let nprocs: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xD1C0);
        println!("== Robustness: ALYA at {nprocs} ranks under jitter amplification ==");
        println!("(displacement 1%; stalls are capped at T_react per wake-up; seed {seed:#x})\n");
        let (rows, stats) = robustness_study(opts, nprocs, seed);
        print!("{}", render_robustness(&rows));
        out.write_json("robustness.json", &rows)?;
        out.write_stats("robustness", &stats)?;
        Ok(())
    });
}
