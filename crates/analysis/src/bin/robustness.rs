//! Failure injection: amplify compute jitter on ALYA and measure how the
//! mechanism degrades (hit rate, savings, late wake-ups, slowdown).
use ibp_analysis::extensions::{render_robustness, robustness_study};

fn main() {
    let nprocs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1C0);
    println!("== Robustness: ALYA at {nprocs} ranks under jitter amplification ==");
    println!("(displacement 1%; stalls are capped at T_react per wake-up; seed {seed:#x})\n");
    let rows = robustness_study(nprocs, seed);
    print!("{}", render_robustness(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/robustness.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
