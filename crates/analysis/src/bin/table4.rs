//! Table IV reproduction: PPA overheads at 16 ranks.
use ibp_analysis::exhibits::{render_table4, table4, SEED};

fn main() {
    let rows = table4(SEED);
    println!("== Table IV: PPA overheads, 16 MPI processes ==");
    print!("{}", render_table4(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/table4.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
