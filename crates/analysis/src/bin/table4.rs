//! Table IV reproduction: PPA overheads at 16 ranks.
use ibp_analysis::exhibits::{render_table4, table4, SEED};
use ibp_analysis::{bin_main, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let rows = table4(&engine, SEED);
        println!("== Table IV: PPA overheads, 16 MPI processes ==");
        print!("{}", render_table4(&rows));
        out.write_json("table4.json", &rows)?;
        out.write_stats("table4", &engine.stats())?;
        Ok(())
    });
}
