//! Fig. 10 reproduction: GT sweep for GROMACS at 64 and 128 ranks.
use ibp_analysis::exhibits::{fig10, render_fig10, SEED};

fn main() {
    let data = fig10(SEED);
    print!("{}", render_fig10(&data));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig10.json",
        serde_json::to_string_pretty(&data).unwrap(),
    )
    .ok();
    std::fs::write(
        "results/fig10.svg",
        ibp_analysis::svg::fig10_svg(&data, ibp_analysis::svg::Mode::Light),
    )
    .ok();
    std::fs::write(
        "results/fig10-dark.svg",
        ibp_analysis::svg::fig10_svg(&data, ibp_analysis::svg::Mode::Dark),
    )
    .ok();
}
