//! Fig. 10 reproduction: GT sweep for GROMACS at 64 and 128 ranks.
use ibp_analysis::exhibits::{fig10, render_fig10, SEED};
use ibp_analysis::{bin_main, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let data = fig10(&engine, SEED);
        print!("{}", render_fig10(&data));
        out.write_json("fig10.json", &data)?;
        out.write_text(
            "fig10.svg",
            &ibp_analysis::svg::fig10_svg(&data, ibp_analysis::svg::Mode::Light),
        )?;
        out.write_text(
            "fig10-dark.svg",
            &ibp_analysis::svg::fig10_svg(&data, ibp_analysis::svg::Mode::Dark),
        )?;
        out.write_stats("fig10", &engine.stats())?;
        Ok(())
    });
}
