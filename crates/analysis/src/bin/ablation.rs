//! Policy ablation: the predictive mechanism between its bounds — the
//! clairvoyant oracle and reactive idle-timeout hardware policies.
use ibp_analysis::extensions::{policy_ablation, render_policy_ablation};
use ibp_analysis::{bin_main, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, args| {
        let out = OutputDir::default_dir()?;
        let nprocs: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
        let engine = SweepEngine::new(opts);
        println!("== Policy ablation at {nprocs} ranks (displacement 1%, GT 20us) ==");
        println!("oracle: perfect idle knowledge, zero stalls (upper bound)");
        println!("reactive-Xus: hardware idle-timeout, full T_react stall per wake\n");
        let rows = policy_ablation(&engine, nprocs, 0xD1C0);
        print!("{}", render_policy_ablation(&rows));
        out.write_json("ablation.json", &rows)?;
        out.write_stats("ablation", &engine.stats())?;
        Ok(())
    });
}
