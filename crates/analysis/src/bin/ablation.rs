//! Policy ablation: the predictive mechanism between its bounds — the
//! clairvoyant oracle and reactive idle-timeout hardware policies.
use ibp_analysis::extensions::{policy_ablation, render_policy_ablation};

fn main() {
    let nprocs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    println!("== Policy ablation at {nprocs} ranks (displacement 1%, GT 20us) ==");
    println!("oracle: perfect idle knowledge, zero stalls (upper bound)");
    println!("reactive-Xus: hardware idle-timeout, full T_react stall per wake\n");
    let rows = policy_ablation(nprocs, 0xD1C0);
    print!("{}", render_policy_ablation(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/ablation.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
