//! Table I reproduction: distribution of link idle intervals.
use ibp_analysis::exhibits::{render_table1, table1, SEED};

fn main() {
    let rows = table1(SEED);
    println!("== Table I: distribution of link idle intervals ==");
    println!("(buckets: <20us unusable, 20-200us exploitable, >200us high-value)");
    print!("{}", render_table1(&rows));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/table1.json",
        serde_json::to_string_pretty(&rows).unwrap(),
    )
    .ok();
}
