//! Table I reproduction: distribution of link idle intervals.
use ibp_analysis::exhibits::{render_table1, table1, SEED};
use ibp_analysis::{bin_main, ExhibitGrid, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let rows = table1(&engine, &ExhibitGrid::paper(), SEED);
        println!("== Table I: distribution of link idle intervals ==");
        println!("(buckets: <20us unusable, 20-200us exploitable, >200us high-value)");
        print!("{}", render_table1(&rows));
        out.write_json("table1.json", &rows)?;
        out.write_stats("table1", &engine.stats())?;
        Ok(())
    });
}
