//! Fig. 9 reproduction: power savings and execution-time increase at
//! displacement factor 0.01.
use ibp_analysis::exhibits::{figure, render_figure, SEED};

fn main() {
    let fig = figure(0.01, SEED);
    println!("== Fig. 9 (displacement {:.0}%) ==", 0.01 * 100.0);
    print!("{}", render_figure(&fig));
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig9.json",
        serde_json::to_string_pretty(&fig).unwrap(),
    )
    .ok();
    std::fs::write(
        "results/fig9.svg",
        ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Light),
    )
    .ok();
    std::fs::write(
        "results/fig9-dark.svg",
        ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Dark),
    )
    .ok();
}
