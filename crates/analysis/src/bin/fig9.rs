//! Fig. 9 reproduction: power savings and execution-time increase at
//! displacement factor 0.01.
use ibp_analysis::exhibits::{figure, render_figure, SEED};
use ibp_analysis::{bin_main, ExhibitGrid, OutputDir, SweepEngine};

fn main() {
    bin_main(|opts, _args| {
        let out = OutputDir::default_dir()?;
        let engine = SweepEngine::new(opts);
        let fig = figure(&engine, &ExhibitGrid::paper(), 0.01, SEED);
        println!("== Fig. 9 (displacement {:.0}%) ==", 0.01 * 100.0);
        print!("{}", render_figure(&fig));
        out.write_json("fig9.json", &fig)?;
        out.write_text(
            "fig9.svg",
            &ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Light),
        )?;
        out.write_text(
            "fig9-dark.svg",
            &ibp_analysis::svg::figure_svg(&fig, ibp_analysis::svg::Mode::Dark),
        )?;
        out.write_stats("fig9", &engine.stats())?;
        Ok(())
    });
}
