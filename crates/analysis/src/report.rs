//! Plain-text table rendering for the experiment binaries.

/// A simple aligned-column table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                if i == 0 {
                    // Left-align the first column (labels).
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Render "ours (paper)" comparison cells.
pub fn vs(ours: f64, paper: f64) -> String {
    format!("{ours:.1} ({paper:.1})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["app", "savings", "slowdown"]);
        t.row(vec!["gromacs".into(), "36.0".into(), "0.01".into()]);
        t.row(vec!["bt".into(), "5.5".into(), "10.00".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].starts_with("gromacs"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(std::f64::consts::PI), "3.1");
        assert_eq!(f2(std::f64::consts::PI), "3.14");
        assert_eq!(vs(1.23, 4.56), "1.2 (4.6)");
    }
}
