//! Self-contained SVG rendering of the paper's figures.
//!
//! The figure binaries write these next to their JSON output so the
//! reproduction can be eyeballed against the paper's plots. Design notes
//! (following the workspace's data-viz procedure):
//!
//! * form: grouped bar chart — magnitude comparison across five process
//!   counts and five applications, the same form the paper uses;
//! * categorical palette: five slots of a validated categorical theme in
//!   fixed application order (never cycled); the light and dark variants
//!   are both validated against their surfaces (light worst adjacent
//!   CVD ΔE 24.2; dark sits in the floor band and leans on the grouped
//!   position + 2 px surface gaps + legend as secondary identity);
//! * the aqua/yellow slots fall below 3:1 contrast on the light surface:
//!   the relief rule is satisfied by the table views every figure ships
//!   (`results/summary.txt`, the JSON, `EXPERIMENTS.md`);
//! * marks: bars ≤ 24 px with a 4 px rounded data-end and square
//!   baseline, 2 px surface gaps between neighbours; the paper's value
//!   for each cell is drawn as an ink tick across the bar (secondary,
//!   non-color encoding of the comparison); hairline solid gridlines;
//! * text wears text tokens, never series hues; native SVG `<title>`
//!   tooltips give per-bar hover (app, scale, ours vs paper);
//! * dark mode is *selected*, not flipped: `Mode::Dark` swaps surface,
//!   ink and the dark-stepped palette.

use crate::exhibits::FigureData;
use std::fmt::Write as _;

/// Light or dark rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Light surface (#fcfcfb).
    Light,
    /// Dark surface (#1a1a19).
    Dark,
}

struct Theme {
    surface: &'static str,
    ink: &'static str,
    ink2: &'static str,
    grid: &'static str,
    series: [&'static str; 5],
}

fn theme(mode: Mode) -> Theme {
    match mode {
        Mode::Light => Theme {
            surface: "#fcfcfb",
            ink: "#0b0b0b",
            ink2: "#52514e",
            grid: "#e8e7e3",
            series: ["#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7"],
        },
        Mode::Dark => Theme {
            surface: "#1a1a19",
            ink: "#ffffff",
            ink2: "#c3c2b7",
            grid: "#2e2e2c",
            series: ["#3987e5", "#199e70", "#c98500", "#008300", "#9085e9"],
        },
    }
}

/// A bar with a 4 px rounded top and square baseline.
fn bar_path(x: f64, y: f64, w: f64, baseline: f64) -> String {
    let r = 4.0_f64.min(w / 2.0).min((baseline - y).max(0.0));
    format!(
        "M{x:.1},{baseline:.1} L{x:.1},{y1:.1} Q{x:.1},{y:.1} {xr:.1},{y:.1} \
         L{xwr:.1},{y:.1} Q{xw:.1},{y:.1} {xw:.1},{y1:.1} L{xw:.1},{baseline:.1} Z",
        y1 = y + r,
        xr = x + r,
        xwr = x + w - r,
        xw = x + w,
    )
}

/// Pick a clean y-axis step covering `max` in ~5 ticks.
fn tick_step(max: f64) -> f64 {
    let raw = max / 5.0;
    for step in [1.0, 2.0, 5.0, 10.0, 20.0, 25.0, 50.0, 100.0] {
        if step >= raw {
            return step;
        }
    }
    100.0
}

/// Render one figure (savings per app × scale, ours as bars, paper as
/// ink ticks) as a standalone SVG document.
pub fn figure_svg(fig: &FigureData, mode: Mode) -> String {
    let th = theme(mode);
    let (w, h) = (940.0, 440.0);
    let (ml, mr, mt, mb) = (56.0, 16.0, 72.0, 44.0);
    let plot_w = w - ml - mr;
    let plot_h = h - mt - mb;
    let baseline = mt + plot_h;

    let napps = fig.rows.len();
    let nscales = 5usize;
    let max_val = fig
        .rows
        .iter()
        .flat_map(|r| r.savings_pct.iter().chain(r.paper_savings_pct.iter()))
        .fold(0.0_f64, |a, &b| a.max(b));
    let step = tick_step(max_val);
    let y_top = (max_val / step).ceil() * step;
    let y = |v: f64| baseline - (v / y_top) * plot_h;

    let group_w = plot_w / nscales as f64;
    let gap = 2.0;
    let bar_w = ((group_w * 0.72 - gap * (napps as f64 - 1.0)) / napps as f64).min(24.0);
    let cluster_w = bar_w * napps as f64 + gap * (napps as f64 - 1.0);

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#
    );
    let _ = write!(
        s,
        r#"<rect width="{w}" height="{h}" fill="{}"/>"#,
        th.surface
    );
    // Title + subtitle.
    let _ = write!(
        s,
        r#"<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{}">IB switch power savings, displacement {:.0}%</text>"#,
        th.ink,
        fig.displacement * 100.0
    );
    let _ = write!(
        s,
        r#"<text x="{ml}" y="42" font-size="12" fill="{}">bars: this reproduction · ink tick: paper value (Dickov et al., ICPP 2014)</text>"#,
        th.ink2
    );
    // Legend (fixed order, swatch + name in text tokens).
    let mut lx = ml;
    for (i, row) in fig.rows.iter().enumerate() {
        let _ = write!(
            s,
            r#"<rect x="{lx}" y="52" width="10" height="10" rx="2" fill="{}"/>"#,
            th.series[i % 5]
        );
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="61" font-size="11" fill="{}">{}</text>"#,
            lx + 14.0,
            th.ink2,
            row.app
        );
        lx += 14.0 + 9.0 * row.app.len() as f64 + 18.0;
    }

    // Gridlines + y ticks.
    let mut v = 0.0;
    while v <= y_top + 1e-9 {
        let yy = y(v);
        let _ = write!(
            s,
            r#"<line x1="{ml}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="{}" stroke-width="1"/>"#,
            ml + plot_w,
            th.grid
        );
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end" fill="{}" font-variant-numeric="tabular-nums">{v:.0}</text>"#,
            ml - 8.0,
            yy + 4.0,
            th.ink2
        );
        v += step;
    }
    // Y-axis label.
    let _ = write!(
        s,
        r#"<text x="14" y="{:.1}" font-size="11" fill="{}" transform="rotate(-90 14 {:.1})" text-anchor="middle">savings [%]</text>"#,
        mt + plot_h / 2.0,
        th.ink2,
        mt + plot_h / 2.0
    );

    // Bars with paper ticks.
    let labels = ["8/9", "16", "32/36", "64", "128/100"];
    for (g, label) in labels.iter().enumerate().take(nscales) {
        let gx = ml + g as f64 * group_w + (group_w - cluster_w) / 2.0;
        for (i, row) in fig.rows.iter().enumerate() {
            let val = row.savings_pct[g];
            let x = gx + i as f64 * (bar_w + gap);
            let yy = y(val);
            let _ = write!(
                s,
                r#"<path d="{}" fill="{}"><title>{} @{}: {:.1}% (paper {:.1}%)</title></path>"#,
                bar_path(x, yy, bar_w, baseline),
                th.series[i % 5],
                row.app,
                label,
                val,
                row.paper_savings_pct[g]
            );
            // Paper value as an ink tick across the bar.
            let py = y(row.paper_savings_pct[g]);
            let _ = write!(
                s,
                r#"<line x1="{:.1}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="{}" stroke-width="2" stroke-linecap="round"/>"#,
                x - 1.5,
                x + bar_w + 1.5,
                th.ink
            );
        }
        // Group label.
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" fill="{}">{}</text>"#,
            gx + cluster_w / 2.0,
            baseline + 18.0,
            th.ink2,
            label
        );
    }
    // Baseline axis.
    let _ = write!(
        s,
        r#"<line x1="{ml}" y1="{baseline:.1}" x2="{:.1}" y2="{baseline:.1}" stroke="{}" stroke-width="1"/>"#,
        ml + plot_w,
        th.ink2
    );
    s.push_str("</svg>");
    s
}

/// Render the Fig. 10 GT sweep (hit-rate vs GT for two scales) as a line
/// chart: 2 px lines, ≥8 px end markers with a 2 px surface ring, direct
/// end labels.
pub fn fig10_svg(data: &crate::exhibits::Fig10Data, mode: Mode) -> String {
    let th = theme(mode);
    let (w, h) = (940.0, 400.0);
    let (ml, mr, mt, mb) = (56.0, 90.0, 56.0, 44.0);
    let plot_w = w - ml - mr;
    let plot_h = h - mt - mb;
    let baseline = mt + plot_h;

    let gt_max = data
        .curves
        .iter()
        .flat_map(|(_, c)| c.iter())
        .fold(0.0_f64, |a, p| a.max(p.gt_us));
    let x = |gt: f64| ml + (gt / gt_max) * plot_w;
    let y = |hit: f64| baseline - (hit / 100.0) * plot_h;

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#
    );
    let _ = write!(s, r#"<rect width="{w}" height="{h}" fill="{}"/>"#, th.surface);
    let _ = write!(
        s,
        r#"<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{}">Correctly predicted MPI calls vs grouping threshold (GROMACS)</text>"#,
        th.ink
    );
    let _ = write!(
        s,
        r#"<text x="{ml}" y="42" font-size="12" fill="{}">the paper's Fig. 10; per-scale optimum motivates Table III's per-application GT selection</text>"#,
        th.ink2
    );

    for v in (0..=5).map(|k| k as f64 * 20.0) {
        let yy = y(v);
        let _ = write!(
            s,
            r#"<line x1="{ml}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="{}" stroke-width="1"/>"#,
            ml + plot_w,
            th.grid
        );
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end" fill="{}" font-variant-numeric="tabular-nums">{v:.0}</text>"#,
            ml - 8.0,
            yy + 4.0,
            th.ink2
        );
    }
    for gt in (0..=4).map(|k| k as f64 * 100.0) {
        let xx = x(gt);
        let _ = write!(
            s,
            r#"<text x="{xx:.1}" y="{:.1}" font-size="11" text-anchor="middle" fill="{}">{gt:.0}</text>"#,
            baseline + 18.0,
            th.ink2
        );
    }
    let _ = write!(
        s,
        r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle" fill="{}">grouping threshold [us]</text>"#,
        ml + plot_w / 2.0,
        baseline + 34.0,
        th.ink2
    );

    for (k, (n, curve)) in data.curves.iter().enumerate() {
        let color = th.series[k % 5];
        let mut path = String::new();
        for (i, p) in curve.iter().enumerate() {
            let _ = write!(
                path,
                "{}{:.1},{:.1} ",
                if i == 0 { "M" } else { "L" },
                x(p.gt_us),
                y(p.hit_rate_pct)
            );
        }
        let _ = write!(
            s,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>"#
        );
        // End marker with surface ring + direct label.
        if let Some(last) = curve.last() {
            let (ex, ey) = (x(last.gt_us), y(last.hit_rate_pct));
            let _ = write!(
                s,
                r#"<circle cx="{ex:.1}" cy="{ey:.1}" r="6" fill="{color}" stroke="{}" stroke-width="2"><title>{n} ranks @GT {:.0} us: {:.1}%</title></circle>"#,
                th.surface,
                last.gt_us,
                last.hit_rate_pct
            );
            let _ = write!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-size="12" fill="{}">{n} ranks</text>"#,
                ex + 12.0,
                ey + 4.0,
                th.ink
            );
        }
    }
    let _ = write!(
        s,
        r#"<line x1="{ml}" y1="{baseline:.1}" x2="{:.1}" y2="{baseline:.1}" stroke="{}" stroke-width="1"/>"#,
        ml + plot_w,
        th.ink2
    );
    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhibits::{Fig10Data, FigureRow};
    use crate::gt_select::GtPoint;

    fn sample_fig() -> FigureData {
        FigureData {
            displacement: 0.01,
            rows: vec![
                FigureRow {
                    app: "alya".into(),
                    procs: vec![8, 16, 32, 64, 128],
                    gt_us: vec![20.0; 5],
                    savings_pct: vec![15.5, 13.2, 9.4, 5.7, 2.6],
                    slowdown_pct: vec![0.1; 5],
                    paper_savings_pct: vec![14.5, 12.6, 8.9, 5.2, 2.3],
                    paper_slowdown_pct: vec![],
                },
                FigureRow {
                    app: "nas-bt".into(),
                    procs: vec![9, 16, 36, 64, 100],
                    gt_us: vec![20.0; 5],
                    savings_pct: vec![50.5, 46.7, 34.2, 19.6, 8.6],
                    slowdown_pct: vec![0.2; 5],
                    paper_savings_pct: vec![51.3, 46.1, 33.3, 20.4, 5.5],
                    paper_slowdown_pct: vec![],
                },
            ],
        }
    }

    #[test]
    fn figure_svg_is_wellformed() {
        for mode in [Mode::Light, Mode::Dark] {
            let svg = figure_svg(&sample_fig(), mode);
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>"));
            // 2 apps × 5 scales bars, each with a tooltip.
            assert_eq!(svg.matches("<title>").count(), 10);
            // Paper ticks present.
            assert!(svg.matches("stroke-linecap=\"round\"").count() >= 10);
            // Balanced tags.
            assert_eq!(svg.matches("<path").count(), svg.matches("</path>").count());
        }
    }

    #[test]
    fn light_and_dark_differ_only_in_theme() {
        let l = figure_svg(&sample_fig(), Mode::Light);
        let d = figure_svg(&sample_fig(), Mode::Dark);
        assert!(l.contains("#fcfcfb") && !l.contains("#1a1a19"));
        assert!(d.contains("#1a1a19") && !d.contains("#fcfcfb"));
        assert!(l.contains("#2a78d6"));
        assert!(d.contains("#3987e5"));
    }

    #[test]
    fn bar_path_rounds_top_not_baseline() {
        let p = bar_path(10.0, 50.0, 20.0, 200.0);
        assert!(p.starts_with("M10.0,200.0"));
        assert!(p.contains('Q'), "rounded data-end missing");
        assert!(p.ends_with('Z'));
        // Degenerate bar (zero height) must not produce negative radius.
        let p0 = bar_path(10.0, 200.0, 20.0, 200.0);
        assert!(!p0.contains("NaN"));
    }

    #[test]
    fn tick_steps_are_clean() {
        assert_eq!(tick_step(47.0), 10.0);
        assert_eq!(tick_step(9.0), 2.0);
        assert_eq!(tick_step(100.0), 20.0);
    }

    #[test]
    fn fig10_svg_renders_two_curves() {
        let data = Fig10Data {
            curves: vec![
                (
                    64,
                    (0..10)
                        .map(|i| GtPoint {
                            gt_us: 20.0 + 40.0 * i as f64,
                            hit_rate_pct: 50.0 + i as f64,
                            est_saving_pct: 10.0,
                        })
                        .collect(),
                ),
                (
                    128,
                    (0..10)
                        .map(|i| GtPoint {
                            gt_us: 20.0 + 40.0 * i as f64,
                            hit_rate_pct: 60.0 + i as f64,
                            est_saving_pct: 10.0,
                        })
                        .collect(),
                ),
            ],
        };
        let svg = fig10_svg(&data, Mode::Light);
        assert!(svg.contains("64 ranks"));
        assert!(svg.contains("128 ranks"));
        assert_eq!(svg.matches("<circle").count(), 2);
    }
}
