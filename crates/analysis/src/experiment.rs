//! End-to-end experiment driver.
//!
//! One experiment = one application at one scale with one power-saving
//! configuration, following the paper's methodology exactly:
//!
//! 1. generate the application trace;
//! 2. replay it unmodified → original execution time;
//! 3. run the PPA + power-mode control over the trace (the PMPI pass),
//!    producing lane directives, overheads and penalties;
//! 4. replay the annotated trace → modified execution time and per-link
//!    low-power spans;
//! 5. report power saving vs the always-on baseline and the
//!    execution-time increase.

use ibp_core::{annotate_trace_jobs, PowerConfig, RankStats, TraceAnnotations};
use ibp_network::{replay, ReplayOptions, SimParams, SimResult};
use ibp_simcore::SimDuration;
use ibp_trace::{IdleDistribution, Trace};
use ibp_workloads::AppKind;
use serde::{Deserialize, Serialize};

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Grouping threshold, µs.
    pub gt_us: f64,
    /// Displacement factor (0.01 / 0.05 / 0.10 in the paper).
    pub displacement: f64,
    /// Workload generation seed.
    pub seed: u64,
}

impl RunConfig {
    /// A run configuration with the given GT and displacement.
    pub fn new(gt_us: f64, displacement: f64) -> Self {
        RunConfig {
            gt_us,
            displacement,
            seed: 0xD1C0,
        }
    }

    /// The [`PowerConfig`] this run uses.
    pub fn power_config(&self) -> PowerConfig {
        PowerConfig::paper(SimDuration::from_us_f64(self.gt_us), self.displacement)
    }
}

/// Everything measured for one (app, nprocs, config) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Process count.
    pub nprocs: u32,
    /// Grouping threshold used, µs.
    pub gt_us: f64,
    /// Displacement factor used.
    pub displacement: f64,
    /// Table III metric: correctly predicted MPI calls (%), averaged over
    /// ranks.
    pub hit_rate_pct: f64,
    /// Figs. 7a/8a/9a metric: IB switch power saving (%), from the replay.
    pub power_saving_pct: f64,
    /// Figs. 7b/8b/9b metric: execution-time increase (%).
    pub slowdown_pct: f64,
    /// Quick estimate of the saving from the runtime alone (no replay
    /// denominator; used by GT sweeps).
    pub est_saving_pct: f64,
    /// Baseline execution time.
    pub baseline_exec: SimDuration,
    /// Managed execution time.
    pub managed_exec: SimDuration,
    /// Aggregate runtime counters over all ranks.
    pub stats: RankStats,
    /// Idle-interval distribution of the generated trace (Table I).
    pub idle: IdleDistribution,
}

/// Generate the trace for `app` at `nprocs` (deterministic per seed).
pub fn make_trace(app: AppKind, nprocs: u32, seed: u64) -> Trace {
    app.workload().generate(nprocs, seed)
}

/// [`make_trace`] with an explicit scaling mode (the weak-scaling study
/// and the sweep engine's [`crate::sweep::VARIANT_WEAK`] cells).
pub fn make_trace_scaled(
    app: AppKind,
    nprocs: u32,
    seed: u64,
    scaling: ibp_workloads::Scaling,
) -> Trace {
    let w: Box<dyn ibp_workloads::Workload> = match app {
        AppKind::Gromacs => Box::new(ibp_workloads::Gromacs {
            scaling,
            ..Default::default()
        }),
        AppKind::Alya => Box::new(ibp_workloads::Alya {
            scaling,
            ..Default::default()
        }),
        AppKind::Wrf => Box::new(ibp_workloads::Wrf {
            scaling,
            ..Default::default()
        }),
        AppKind::NasBt => Box::new(ibp_workloads::NasBt {
            scaling,
            ..Default::default()
        }),
        AppKind::NasMg => Box::new(ibp_workloads::NasMg {
            scaling,
            ..Default::default()
        }),
    };
    w.generate(nprocs, seed)
}

/// Annotate + double replay, computing every reported metric.
pub fn run_on_trace(trace: &Trace, app: AppKind, cfg: &RunConfig) -> RunResult {
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let baseline = replay(trace, None, &params, &opts).expect("replay");
    run_with_baseline(trace, app, cfg, &baseline)
}

/// Annotate + managed replay against an already-computed fault-free
/// baseline (the sweep engine memoizes the baseline per trace key, so
/// it is replayed exactly once per sweep instead of once per cell).
pub fn run_with_baseline(
    trace: &Trace,
    app: AppKind,
    cfg: &RunConfig,
    baseline: &SimResult,
) -> RunResult {
    run_with_baseline_jobs(trace, app, cfg, baseline, 1)
}

/// [`run_with_baseline`] with the annotation pass spread over up to
/// `rank_jobs` threads (sweep cells hand in their leftover worker
/// budget). Results are identical for any `rank_jobs`.
pub fn run_with_baseline_jobs(
    trace: &Trace,
    app: AppKind,
    cfg: &RunConfig,
    baseline: &SimResult,
    rank_jobs: usize,
) -> RunResult {
    let pc = cfg.power_config();
    let ann = annotate_trace_jobs(trace, &pc, rank_jobs);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let managed = replay(trace, Some(&ann), &params, &opts).expect("replay");
    collect(trace, app, cfg, &ann, baseline, &managed)
}

/// Run the full experiment (generation included).
pub fn run(app: AppKind, nprocs: u32, cfg: &RunConfig) -> RunResult {
    let trace = make_trace(app, nprocs, cfg.seed);
    run_on_trace(&trace, app, cfg)
}

/// Runtime-only pass (annotation, no replay): cheap, used by GT sweeps.
/// `est_saving_pct` and `hit_rate_pct` are filled; replay metrics are 0.
pub fn run_runtime_only(trace: &Trace, app: AppKind, cfg: &RunConfig) -> RunResult {
    run_runtime_only_jobs(trace, app, cfg, 1)
}

/// [`run_runtime_only`] with rank-parallel annotation; see
/// [`run_with_baseline_jobs`].
pub fn run_runtime_only_jobs(
    trace: &Trace,
    app: AppKind,
    cfg: &RunConfig,
    rank_jobs: usize,
) -> RunResult {
    let pc = cfg.power_config();
    let ann = annotate_trace_jobs(trace, &pc, rank_jobs);
    RunResult {
        app: app.name().to_string(),
        nprocs: trace.nprocs,
        gt_us: cfg.gt_us,
        displacement: cfg.displacement,
        hit_rate_pct: ann.mean_hit_rate_pct(),
        power_saving_pct: 0.0,
        slowdown_pct: 0.0,
        est_saving_pct: ann.mean_est_power_saving_pct(pc.low_power_fraction),
        baseline_exec: SimDuration::ZERO,
        managed_exec: SimDuration::ZERO,
        stats: ann.aggregate_stats(),
        idle: IdleDistribution::from_trace(trace),
    }
}

fn collect(
    trace: &Trace,
    app: AppKind,
    cfg: &RunConfig,
    ann: &TraceAnnotations,
    baseline: &SimResult,
    managed: &SimResult,
) -> RunResult {
    RunResult {
        app: app.name().to_string(),
        nprocs: trace.nprocs,
        gt_us: cfg.gt_us,
        displacement: cfg.displacement,
        hit_rate_pct: ann.mean_hit_rate_pct(),
        power_saving_pct: managed.power_saving_pct(),
        slowdown_pct: managed.slowdown_pct(baseline),
        est_saving_pct: ann
            .mean_est_power_saving_pct(cfg.power_config().low_power_fraction),
        baseline_exec: baseline.exec_time,
        managed_exec: managed.exec_time,
        stats: ann.aggregate_stats(),
        idle: IdleDistribution::from_trace(trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alya_small_end_to_end() {
        // Shrunk ALYA run: the full pipeline holds together and produces
        // sane numbers.
        let alya = ibp_workloads::Alya { iterations: 40, ..Default::default() };
        let trace = ibp_workloads::Workload::generate(&alya, 8, 1);
        let cfg = RunConfig::new(20.0, 0.10);
        let r = run_on_trace(&trace, AppKind::Alya, &cfg);
        assert!(r.hit_rate_pct > 50.0, "hit {}", r.hit_rate_pct);
        assert!(r.power_saving_pct > 0.0 && r.power_saving_pct < 57.0);
        assert!(r.slowdown_pct > -0.5 && r.slowdown_pct < 5.0);
        assert!(r.baseline_exec > SimDuration::ZERO);
        assert!(r.managed_exec >= r.baseline_exec);
    }

    #[test]
    fn runtime_only_matches_full_run_hit_rate() {
        let alya = ibp_workloads::Alya { iterations: 30, ..Default::default() };
        let trace = ibp_workloads::Workload::generate(&alya, 4, 2);
        let cfg = RunConfig::new(20.0, 0.01);
        let fast = run_runtime_only(&trace, AppKind::Alya, &cfg);
        let full = run_on_trace(&trace, AppKind::Alya, &cfg);
        assert_eq!(fast.hit_rate_pct, full.hit_rate_pct);
        assert_eq!(fast.est_saving_pct, full.est_saving_pct);
    }
}
