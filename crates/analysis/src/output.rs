//! Results-directory output for the exhibit binaries.
//!
//! The binaries used to swallow every IO error with `.ok()`, which
//! turned a read-only or otherwise broken `results/` directory into
//! silent empty output. This module gives them one narrow interface
//! that propagates `std::io::Result` with the failing path attached,
//! so `main` can exit nonzero with a usable message instead.

use crate::sweep::SweepStats;
use serde::Serialize;
use std::io;
use std::path::{Path, PathBuf};

/// Environment variable overriding the default `results/` directory
/// (used by tests and the CI serial-vs-parallel diff).
pub const RESULTS_DIR_ENV: &str = "IBP_RESULTS_DIR";

/// A results directory the exhibit binaries write into.
#[derive(Debug, Clone)]
pub struct OutputDir {
    root: PathBuf,
}

/// Attach `path` to an IO error so the operator sees *which* write
/// failed.
fn with_path(path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

impl OutputDir {
    /// An output directory rooted at `root`; the directory is created
    /// eagerly so a doomed run fails before any computation.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| with_path(&root, e))?;
        Ok(OutputDir { root })
    }

    /// The default directory: `$IBP_RESULTS_DIR` or `results/`.
    pub fn default_dir() -> io::Result<Self> {
        let root = std::env::var(RESULTS_DIR_ENV).unwrap_or_else(|_| "results".to_string());
        Self::new(root)
    }

    /// The directory this writes into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write `value` as pretty JSON to `<root>/<name>`.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> io::Result<PathBuf> {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::other(format!("serializing {name}: {e}")))?;
        self.write_text(name, &json)
    }

    /// Write raw text to `<root>/<name>`.
    pub fn write_text(&self, name: &str, text: &str) -> io::Result<PathBuf> {
        let path = self.root.join(name);
        std::fs::write(&path, text).map_err(|e| with_path(&path, e))?;
        Ok(path)
    }

    /// Write an exhibit's [`SweepStats`] as `<exhibit>.stats.json`.
    ///
    /// Stats files carry run-dependent fields (`jobs`, `wall_ms`), so
    /// byte-equality checks between serial and parallel runs must
    /// exclude `*.stats.json` — everything else in the directory is
    /// bit-identical across `--jobs` values.
    pub fn write_stats(&self, exhibit: &str, stats: &SweepStats) -> io::Result<PathBuf> {
        self.write_json(&format!("{exhibit}.stats.json"), stats)
    }
}

/// Shared entry point for the exhibit binaries: strips `--jobs N` /
/// `--serial` from argv (exit 2 on a malformed flag), hands the
/// remaining positional args to `f`, and exits 1 with the error —
/// which names the failing path — if `f` fails.
pub fn bin_main<F>(f: F)
where
    F: FnOnce(crate::sweep::SweepOptions, &[String]) -> io::Result<()>,
{
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match crate::sweep::sweep_args(&mut args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = f(opts, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_json_and_stats() {
        let dir = std::env::temp_dir().join(format!("ibp-out-{}", std::process::id()));
        let out = OutputDir::new(&dir).unwrap();
        let p = out.write_json("x.json", &vec![1, 2, 3]).unwrap();
        assert!(std::fs::read_to_string(p).unwrap().contains('2'));
        let s = SweepStats::default();
        let p = out.write_stats("x", &s).unwrap();
        assert!(p.ends_with("x.stats.json"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn blocked_results_dir_is_a_clean_error_not_silent_empty_output() {
        // A regular file squatting on the results path: every write
        // must surface an error naming the offending path.
        let dir = std::env::temp_dir().join(format!("ibp-blocked-{}", std::process::id()));
        std::fs::write(&dir, b"not a directory").unwrap();
        let err = OutputDir::new(&dir).unwrap_err();
        assert!(
            err.to_string().contains(&dir.display().to_string()),
            "error must name the path: {err}"
        );
        std::fs::remove_file(dir).ok();
    }
}
