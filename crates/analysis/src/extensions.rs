//! Studies beyond the paper's published evaluation.
//!
//! * [`policy_ablation`] — the predictive mechanism between its bounds:
//!   a clairvoyant oracle (max savings at zero stalls) and reactive
//!   idle-timeout hardware policies (more savings, every wake-up on the
//!   critical path) — quantifying the related-work trade-off the paper
//!   argues qualitatively.
//! * [`deep_sleep_study`] — the paper's §VI future work: let long
//!   predicted idles power down switch buffers/crossbar too
//!   (millisecond reactivation, ~10% draw) and measure what the
//!   prediction accuracy buys.
//! * [`weak_scaling_study`] — the paper's §VI conjecture that the
//!   mechanism "would benefit more in weak scaling runs".
//! * [`robustness_study`] — failure injection: amplify compute jitter
//!   and watch mispredictions, savings, and slowdown degrade.

use crate::experiment::RunConfig;
use crate::report::{f1, f2, Table};
use crate::sweep::{CellKey, SweepEngine, SweepOptions, SweepStats, TraceFn, VARIANT_WEAK};
use ibp_core::{
    annotate_trace, history_annotate_trace_jobs, oracle_annotate_trace_jobs,
    reactive_annotate_trace_jobs, PowerConfig, TraceAnnotations,
};
use ibp_network::{replay, ReplayOptions, SimParams, SimResult};
use ibp_simcore::SimDuration;
use ibp_trace::Trace;
use ibp_workloads::{AppKind, Scaling, Workload};
use serde::{Deserialize, Serialize};

/// One policy's outcome on one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// IB switch power saving, %.
    pub saving_pct: f64,
    /// Execution-time increase vs the unmanaged baseline, %.
    pub slowdown_pct: f64,
}

fn run_policy(
    trace: &Trace,
    baseline: &SimResult,
    ann: &TraceAnnotations,
    params: &SimParams,
) -> (f64, f64) {
    let managed = replay(trace, Some(ann), params, &ReplayOptions::default()).expect("replay");
    (managed.power_saving_pct(), managed.slowdown_pct(baseline))
}

/// Nearest valid NAS BT (square) process count.
fn bt_square(nprocs: u32) -> u32 {
    match nprocs {
        8 => 9,
        32 => 36,
        128 => 100,
        other => other,
    }
}

/// Compare the predictive mechanism against the oracle and reactive
/// baselines on every application at `nprocs` ranks.
pub fn policy_ablation(engine: &SweepEngine, nprocs: u32, seed: u64) -> Vec<PolicyOutcome> {
    let cells: Vec<CellKey> = AppKind::ALL
        .iter()
        .map(|&app| {
            let n = if app == AppKind::NasBt {
                bt_square(nprocs)
            } else {
                nprocs
            };
            CellKey::new(app, n, seed)
        })
        .collect();
    let per_app: Vec<Vec<PolicyOutcome>> = engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let params = SimParams::paper();
            let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
            let trace = &*ctx.trace;
            let baseline = ctx.baseline();

            let jobs = ctx.rank_jobs;
            let policies: Vec<(String, TraceAnnotations)> = vec![
                ("ppa".into(), ctx.annotate(&cfg)),
                ("oracle".into(), oracle_annotate_trace_jobs(trace, &cfg, jobs)),
                (
                    "reactive-0us".into(),
                    reactive_annotate_trace_jobs(trace, &cfg, SimDuration::ZERO, jobs),
                ),
                (
                    "reactive-50us".into(),
                    reactive_annotate_trace_jobs(trace, &cfg, SimDuration::from_us(50), jobs),
                ),
                (
                    "history-8".into(),
                    history_annotate_trace_jobs(trace, &cfg, 8, jobs),
                ),
            ];
            policies
                .into_iter()
                .map(|(name, ann)| {
                    let (saving, slowdown) = run_policy(trace, &baseline, &ann, &params);
                    PolicyOutcome {
                        app: key.app.name().to_string(),
                        policy: name,
                        saving_pct: saving,
                        slowdown_pct: slowdown,
                    }
                })
                .collect()
        },
    );
    per_app.into_iter().flatten().collect()
}

/// Render the policy ablation.
pub fn render_policy_ablation(rows: &[PolicyOutcome]) -> String {
    let mut t = Table::new(&["app", "policy", "saving %", "slowdown %"]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            r.policy.clone(),
            f1(r.saving_pct),
            f2(r.slowdown_pct),
        ]);
    }
    t.render()
}

/// WRPS-only vs two-tier (WRPS + deep) policy per application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepSleepOutcome {
    /// Application name.
    pub app: String,
    /// WRPS-only saving, %.
    pub wrps_saving_pct: f64,
    /// WRPS-only slowdown, %.
    pub wrps_slowdown_pct: f64,
    /// Two-tier saving, %.
    pub deep_saving_pct: f64,
    /// Two-tier slowdown, %.
    pub deep_slowdown_pct: f64,
    /// Share of sleep windows that went deep, %.
    pub deep_window_pct: f64,
}

/// Run the §VI deep-sleep study at `nprocs` ranks with the given deep
/// threshold.
pub fn deep_sleep_study(
    engine: &SweepEngine,
    nprocs: u32,
    threshold: SimDuration,
    seed: u64,
) -> Vec<DeepSleepOutcome> {
    let cells: Vec<CellKey> = AppKind::ALL
        .iter()
        .map(|&app| {
            let n = if app == AppKind::NasBt { 9 } else { nprocs };
            CellKey::new(app, n, seed)
        })
        .collect();
    engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let app = key.app;
            let params = SimParams::paper();
            let base_cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
            let deep_cfg = base_cfg.clone().with_deep_sleep(threshold);
            let trace = &*ctx.trace;
            let baseline = ctx.baseline();
            let wrps_ann = ctx.annotate(&base_cfg);
            let deep_ann = ctx.annotate(&deep_cfg);
            let (ws, wd) = run_policy(trace, &baseline, &wrps_ann, &params);
            let (ds, dd) = run_policy(trace, &baseline, &deep_ann, &params);
            let total: usize = deep_ann.ranks.iter().map(|r| r.directives.len()).sum();
            let deep: usize = deep_ann
                .ranks
                .iter()
                .flat_map(|r| &r.directives)
                .filter(|d| d.kind == ibp_core::SleepKind::Deep)
                .count();
            DeepSleepOutcome {
                app: app.name().to_string(),
                wrps_saving_pct: ws,
                wrps_slowdown_pct: wd,
                deep_saving_pct: ds,
                deep_slowdown_pct: dd,
                deep_window_pct: if total == 0 {
                    0.0
                } else {
                    100.0 * deep as f64 / total as f64
                },
            }
        },
    )
}

/// Render the deep-sleep study.
pub fn render_deep_sleep(rows: &[DeepSleepOutcome]) -> String {
    let mut t = Table::new(&[
        "app",
        "WRPS sav%",
        "WRPS slow%",
        "deep sav%",
        "deep slow%",
        "deep windows %",
    ]);
    for r in rows {
        t.row(vec![
            r.app.clone(),
            f1(r.wrps_saving_pct),
            f2(r.wrps_slowdown_pct),
            f1(r.deep_saving_pct),
            f2(r.deep_slowdown_pct),
            f1(r.deep_window_pct),
        ]);
    }
    t.render()
}

/// Strong vs weak scaling of the savings for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingOutcome {
    /// Application name.
    pub app: String,
    /// Process counts.
    pub procs: Vec<u32>,
    /// Strong-scaling savings per count, %.
    pub strong_saving_pct: Vec<f64>,
    /// Weak-scaling savings per count, %.
    pub weak_saving_pct: Vec<f64>,
}

/// The §VI conjecture: weak-scaling savings stay flat where strong
/// scaling collapses. Strong and weak cells share nothing, so all
/// `2 × procs` cells run concurrently on the engine (weak traces are
/// cached under [`VARIANT_WEAK`] keys).
pub fn weak_scaling_study(engine: &SweepEngine, app: AppKind, seed: u64) -> ScalingOutcome {
    let procs: Vec<u32> = if app == AppKind::NasBt {
        vec![9, 16, 36, 64]
    } else {
        vec![8, 16, 32, 64]
    };
    // Cell order mirrors the original serial loops: per count, strong
    // then weak.
    let cells: Vec<CellKey> = procs
        .iter()
        .flat_map(|&n| {
            [Scaling::Strong, Scaling::Weak].map(|mode| CellKey {
                app,
                nprocs: n,
                seed,
                variant: match mode {
                    Scaling::Strong => crate::sweep::VARIANT_STRONG,
                    Scaling::Weak => VARIANT_WEAK,
                },
            })
        })
        .collect();
    let savings = engine.run_cells(
        &cells,
        |&k| k,
        |ctx, _, _| {
            let params = SimParams::paper();
            let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
            let ann = ctx.annotate(&cfg);
            let (saving, _) = run_policy(&ctx.trace, &ctx.baseline(), &ann, &params);
            saving
        },
    );
    let (strong, weak): (Vec<f64>, Vec<f64>) = savings
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .unzip();
    ScalingOutcome {
        app: app.name().to_string(),
        procs,
        strong_saving_pct: strong,
        weak_saving_pct: weak,
    }
}

/// Render a weak-scaling study.
pub fn render_weak_scaling(rows: &[ScalingOutcome]) -> String {
    let mut t = Table::new(&["app", "mode", "@8/9", "@16", "@32/36", "@64"]);
    for r in rows {
        let mut strong = vec![r.app.clone(), "strong".into()];
        let mut weak = vec![r.app.clone(), "weak".into()];
        for i in 0..4 {
            strong.push(f1(r.strong_saving_pct[i]));
            weak.push(f1(r.weak_saving_pct[i]));
        }
        t.row(strong);
        t.row(weak);
    }
    t.render()
}

/// One jitter level's outcome in the robustness study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Jitter multiplier applied to the generator's sigma.
    pub jitter_multiplier: f64,
    /// Hit rate, %.
    pub hit_rate_pct: f64,
    /// Power saving, %.
    pub saving_pct: f64,
    /// Slowdown, %.
    pub slowdown_pct: f64,
    /// Timing mispredictions per 1000 calls.
    pub timing_miss_per_kcall: f64,
}

/// The jitter multipliers [`robustness_study`] sweeps.
pub const JITTER_MULTIPLIERS: [f64; 7] = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0];

/// Trace source for the robustness study: the cell variant indexes
/// [`JITTER_MULTIPLIERS`], scaling ALYA's compute-gap sigmas.
fn jitter_trace_fn() -> TraceFn {
    std::sync::Arc::new(|key: &CellKey| {
        let mult = JITTER_MULTIPLIERS[key.variant as usize];
        let mut alya = ibp_workloads::Alya::default();
        alya.assembly_gap.sigma *= mult;
        alya.solver_gap.sigma *= mult;
        alya.generate(key.nprocs, key.seed)
    })
}

/// Failure injection: scale ALYA's compute jitter and displacement-test
/// the mechanism. Builds its own engine (the jitter workloads are not
/// the paper grid's, so they get a private trace cache) and returns the
/// rows plus that engine's [`SweepStats`].
pub fn robustness_study(
    opts: SweepOptions,
    nprocs: u32,
    seed: u64,
) -> (Vec<RobustnessPoint>, SweepStats) {
    let engine = SweepEngine::with_trace_fn(opts, jitter_trace_fn());
    let cells: Vec<CellKey> = (0..JITTER_MULTIPLIERS.len() as u32)
        .map(|i| CellKey {
            app: AppKind::Alya,
            nprocs,
            seed,
            variant: i,
        })
        .collect();
    let rows = engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let params = SimParams::paper();
            let cfg = RunConfig::new(20.0, 0.01).power_config();
            let ann = ctx.annotate(&cfg);
            let agg = ann.aggregate_stats();
            let managed = replay(&ctx.trace, Some(&ann), &params, &ReplayOptions::default())
                .expect("replay");
            RobustnessPoint {
                jitter_multiplier: JITTER_MULTIPLIERS[key.variant as usize],
                hit_rate_pct: agg.hit_rate_pct(),
                saving_pct: managed.power_saving_pct(),
                slowdown_pct: managed.slowdown_pct(&ctx.baseline()),
                timing_miss_per_kcall: 1000.0 * agg.timing_mispredictions as f64
                    / agg.total_calls.max(1) as f64,
            }
        },
    );
    let stats = engine.stats();
    (rows, stats)
}

/// One fault-rate level's outcome in the fault-tolerance study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultTolerancePoint {
    /// Fault-rate multiplier fed to [`ibp_network::FaultConfig::with_rate`].
    pub fault_rate: f64,
    /// Fault events injected into the managed (plain) run.
    pub fault_events: u64,
    /// Hit rate of the plain annotation, %.
    pub hit_rate_pct: f64,
    /// Power saving of the plain mechanism under faults, %.
    pub plain_saving_pct: f64,
    /// Slowdown of the plain mechanism vs the power-unaware baseline
    /// replayed under the *same* faults, %.
    pub plain_slowdown_pct: f64,
    /// Power saving with the resilience controller enabled, %.
    pub resilient_saving_pct: f64,
    /// Slowdown with the resilience controller enabled, %.
    pub resilient_slowdown_pct: f64,
    /// Misprediction storms the resilience controller detected.
    pub storms: u64,
}

/// Fault injection sweep: replay ALYA under rising link fault rates,
/// with and without the resilience controller, always comparing against
/// a power-unaware baseline subjected to the same faults.
pub fn fault_tolerance_study(
    engine: &SweepEngine,
    nprocs: u32,
    seed: u64,
) -> Vec<FaultTolerancePoint> {
    let key = CellKey::new(AppKind::Alya, nprocs, seed);
    // The two annotation passes are shared by every fault-rate cell;
    // compute them once, outside the pool, from the memoized trace.
    let trace = engine.trace(&key);
    let plain_cfg = RunConfig::new(20.0, 0.01).power_config();
    let resilient_cfg = plain_cfg
        .clone()
        .with_resilience(ibp_core::ResilienceConfig::standard());
    let plain_ann = annotate_trace(&trace, &plain_cfg);
    let resilient_ann = annotate_trace(&trace, &resilient_cfg);
    let rates: Vec<f64> = vec![0.0, 1.0, 5.0, 10.0, 25.0, 50.0];
    engine.run_cells(
        &rates,
        |_| key,
        |ctx, &rate, _| {
            let params = SimParams::paper();
            // The fault plan derives from the *cell key* (the study
            // seed), never from pool scheduling: identical plans under
            // any --jobs value.
            let opts = ReplayOptions {
                faults: (rate > 0.0)
                    .then(|| ibp_network::FaultConfig::with_rate(seed ^ 0xFA17, rate)),
                ..ReplayOptions::default()
            };
            // The rate-0 baseline is the memoized fault-free one; faulty
            // baselines are replayed per cell (the fault stream differs).
            let baseline = if opts.faults.is_none() {
                ctx.baseline()
            } else {
                std::sync::Arc::new(replay(&ctx.trace, None, &params, &opts).expect("replay"))
            };
            let plain = replay(&ctx.trace, Some(&plain_ann), &params, &opts).expect("replay");
            let resilient =
                replay(&ctx.trace, Some(&resilient_ann), &params, &opts).expect("replay");
            FaultTolerancePoint {
                fault_rate: rate,
                fault_events: plain.faults.total_events(),
                hit_rate_pct: plain_ann.aggregate_stats().hit_rate_pct(),
                plain_saving_pct: plain.power_saving_pct(),
                plain_slowdown_pct: plain.slowdown_pct(&baseline),
                resilient_saving_pct: resilient.power_saving_pct(),
                resilient_slowdown_pct: resilient.slowdown_pct(&baseline),
                storms: resilient_ann.aggregate_stats().storms,
            }
        },
    )
}

/// Render the fault-tolerance study.
pub fn render_fault_tolerance(rows: &[FaultTolerancePoint]) -> String {
    let mut t = Table::new(&[
        "fault x",
        "events",
        "hit %",
        "plain sav%",
        "plain slow%",
        "resil sav%",
        "resil slow%",
    ]);
    for r in rows {
        t.row(vec![
            f1(r.fault_rate),
            r.fault_events.to_string(),
            f1(r.hit_rate_pct),
            f1(r.plain_saving_pct),
            f2(r.plain_slowdown_pct),
            f1(r.resilient_saving_pct),
            f2(r.resilient_slowdown_pct),
        ]);
    }
    t.render()
}

/// Render the robustness study.
pub fn render_robustness(rows: &[RobustnessPoint]) -> String {
    let mut t = Table::new(&[
        "jitter x",
        "hit %",
        "saving %",
        "slowdown %",
        "late wakes /kcall",
    ]);
    for r in rows {
        t.row(vec![
            f1(r.jitter_multiplier),
            f1(r.hit_rate_pct),
            f1(r.saving_pct),
            f2(r.slowdown_pct),
            f1(r.timing_miss_per_kcall),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::{oracle_annotate_trace, reactive_annotate_trace};

    #[test]
    fn oracle_bounds_ppa_from_above() {
        // Use a small ALYA for speed.
        let alya = ibp_workloads::Alya { iterations: 40, ..Default::default() };
        let trace = alya.generate(8, 1);
        let params = SimParams::paper();
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let baseline = replay(&trace, None, &params, &ReplayOptions::default()).expect("replay");
        let (ppa_s, ppa_d) = run_policy(&trace, &baseline, &annotate_trace(&trace, &cfg), &params);
        let (ora_s, ora_d) =
            run_policy(&trace, &baseline, &oracle_annotate_trace(&trace, &cfg), &params);
        assert!(ora_s >= ppa_s, "oracle {ora_s} < ppa {ppa_s}");
        assert!(ora_d <= ppa_d + 0.05, "oracle slowdown {ora_d} vs ppa {ppa_d}");
    }

    #[test]
    fn reactive_trades_stalls_for_savings() {
        let alya = ibp_workloads::Alya { iterations: 40, ..Default::default() };
        let trace = alya.generate(8, 2);
        let params = SimParams::paper();
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let baseline = replay(&trace, None, &params, &ReplayOptions::default()).expect("replay");
        let (ppa_s, ppa_d) = run_policy(&trace, &baseline, &annotate_trace(&trace, &cfg), &params);
        let (rea_s, rea_d) = run_policy(
            &trace,
            &baseline,
            &reactive_annotate_trace(&trace, &cfg, SimDuration::ZERO),
            &params,
        );
        // Reactive exploits every gap (even unpredictable ones) → more
        // savings, but pays T_react on every wake-up → more slowdown.
        assert!(rea_s >= ppa_s, "reactive {rea_s} < ppa {ppa_s}");
        assert!(rea_d > ppa_d, "reactive slowdown {rea_d} <= ppa {ppa_d}");
    }

    #[test]
    fn deep_sleep_increases_savings_on_long_gap_apps() {
        // WRF at 8 ranks has ~18 ms physics gaps: deep sleep (threshold
        // 5 ms) should beat WRPS-only on savings.
        let wrf = ibp_workloads::Wrf { iterations: 30, ..Default::default() };
        let trace = ibp_workloads::Workload::generate(&wrf, 8, 3);
        let params = SimParams::paper();
        let base_cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let deep_cfg = base_cfg.clone().with_deep_sleep(SimDuration::from_ms(5));
        let baseline = replay(&trace, None, &params, &ReplayOptions::default()).expect("replay");
        let (ws, _) = run_policy(&trace, &baseline, &annotate_trace(&trace, &base_cfg), &params);
        let (ds, _) = run_policy(&trace, &baseline, &annotate_trace(&trace, &deep_cfg), &params);
        assert!(
            ds > ws + 5.0,
            "deep sleep should add savings on WRF: {ds} vs {ws}"
        );
    }

    #[test]
    fn weak_scaling_flattens_the_collapse() {
        let engine = SweepEngine::new(SweepOptions::default());
        let out = weak_scaling_study(&engine, AppKind::Alya, 4);
        // Strong scaling collapses from @8 to @64…
        let s_drop = out.strong_saving_pct[0] - out.strong_saving_pct[3];
        // …weak scaling must retain much more of the saving.
        let w_drop = out.weak_saving_pct[0] - out.weak_saving_pct[3];
        assert!(
            w_drop < s_drop * 0.6,
            "weak drop {w_drop} not much flatter than strong drop {s_drop}\n{out:?}"
        );
        assert!(out.weak_saving_pct[3] > out.strong_saving_pct[3]);
    }

    #[test]
    fn fault_tolerance_sweep_is_consistent() {
        let engine = SweepEngine::new(SweepOptions::default());
        let rows = fault_tolerance_study(&engine, 4, 6);
        assert_eq!(rows[0].fault_rate, 0.0);
        assert_eq!(rows[0].fault_events, 0, "rate 0 must be fault-free");
        let last = rows.last().unwrap();
        assert!(last.fault_events > 0, "heavy rate must inject faults");
        // Fault-free slowdowns of plain and resilient runs stay close:
        // the resilience controller is near-dormant on a clean trace.
        assert!(
            (rows[0].plain_saving_pct - rows[0].resilient_saving_pct).abs() < 1.0,
            "plain {} vs resilient {}",
            rows[0].plain_saving_pct,
            rows[0].resilient_saving_pct
        );
    }

    #[test]
    fn robustness_degrades_gracefully() {
        let (rows, stats) = robustness_study(SweepOptions::default(), 8, 5);
        assert_eq!(stats.traces_generated as usize, JITTER_MULTIPLIERS.len());
        let first = &rows[0];
        let last = rows.last().unwrap();
        // Extreme jitter must cost late wake-ups and savings…
        assert!(last.timing_miss_per_kcall > first.timing_miss_per_kcall);
        assert!(last.saving_pct < first.saving_pct);
        // …but never catastrophic slowdown (stalls are T_react-capped).
        assert!(last.slowdown_pct < 5.0, "{}", last.slowdown_pct);
    }
}
