//! The paper's published numbers, for side-by-side comparison.
//!
//! Values transcribed from Dickov et al., ICPP 2014: Figs. 7–9 (power
//! savings and execution-time increase per displacement factor), Table
//! III (chosen grouping thresholds and hit rates) and Table IV (PPA
//! overheads at 16 ranks). `EXPERIMENTS.md` is generated against these.

use ibp_workloads::AppKind;

/// The scale axis as the paper labels it (BT/“100” column uses square
/// counts).
pub const SCALE_LABELS: [&str; 5] = ["8/9", "16", "32/36", "64", "128/100"];

/// Process counts per application, paper order.
pub fn paper_procs(app: AppKind) -> [u32; 5] {
    match app {
        AppKind::NasBt => [9, 16, 36, 64, 100],
        _ => [8, 16, 32, 64, 128],
    }
}

/// Fig. 9a (displacement 1%): IB switch power savings, %.
pub fn savings_disp1(app: AppKind) -> [f64; 5] {
    match app {
        AppKind::Gromacs => [36.0, 33.1, 30.6, 25.7, 17.0],
        AppKind::Alya => [14.5, 12.6, 8.9, 5.2, 2.3],
        AppKind::Wrf => [38.1, 31.0, 22.0, 11.4, 4.1],
        AppKind::NasBt => [51.3, 46.1, 33.3, 20.4, 5.5],
        AppKind::NasMg => [27.7, 29.0, 19.3, 12.3, 3.7],
    }
}

/// Fig. 8a (displacement 5%): IB switch power savings, %.
pub fn savings_disp5(app: AppKind) -> [f64; 5] {
    match app {
        AppKind::Gromacs => [34.6, 31.8, 29.4, 24.7, 16.3],
        AppKind::Alya => [13.9, 12.1, 8.5, 5.1, 2.2],
        AppKind::Wrf => [36.8, 30.0, 21.2, 10.9, 3.8],
        AppKind::NasBt => [49.3, 44.2, 32.0, 19.6, 5.5],
        AppKind::NasMg => [26.6, 27.9, 18.5, 11.9, 3.6],
    }
}

/// Fig. 7a (displacement 10%): IB switch power savings, %.
pub fn savings_disp10(app: AppKind) -> [f64; 5] {
    match app {
        AppKind::Gromacs => [32.8, 30.2, 27.8, 23.4, 15.0],
        AppKind::Alya => [13.2, 11.5, 8.1, 4.8, 2.1],
        AppKind::Wrf => [35.1, 28.5, 20.21, 10.45, 3.6],
        AppKind::NasBt => [46.7, 41.9, 30.3, 18.5, 5.5],
        AppKind::NasMg => [25.2, 26.4, 17.5, 11.3, 3.4],
    }
}

/// Fig. 9b (displacement 1%): execution-time increase, %.
pub fn slowdown_disp1(app: AppKind) -> [f64; 5] {
    match app {
        AppKind::Gromacs => [0.01, 0.02, 0.06, 0.10, 4.19],
        AppKind::Alya => [0.01, 0.03, 0.06, 0.11, 0.13],
        AppKind::Wrf => [0.15, 0.26, 0.40, 0.56, 0.79],
        AppKind::NasBt => [0.01, 0.01, 0.04, 0.06, 0.13],
        AppKind::NasMg => [0.26, 0.42, 0.56, 0.70, 1.05],
    }
}

/// Savings for a displacement factor (1%, 5% or 10%).
pub fn savings(app: AppKind, displacement: f64) -> [f64; 5] {
    if displacement <= 0.02 {
        savings_disp1(app)
    } else if displacement <= 0.07 {
        savings_disp5(app)
    } else {
        savings_disp10(app)
    }
}

/// Table III: chosen grouping threshold (µs) per application and scale.
pub fn table3_gt(app: AppKind) -> [f64; 5] {
    match app {
        AppKind::Gromacs => [20.0, 222.0, 20.0, 22.0, 136.0],
        AppKind::Alya => [20.0, 72.0, 36.0, 36.0, 20.0],
        AppKind::Wrf => [56.0, 30.0, 30.0, 36.0, 22.0],
        AppKind::NasBt => [20.0, 22.0, 46.0, 20.0, 50.0],
        AppKind::NasMg => [300.0, 382.0, 300.0, 290.0, 150.0],
    }
}

/// Table III: MPI call hit rate (%) per application and scale.
pub fn table3_hit(app: AppKind) -> [f64; 5] {
    match app {
        AppKind::Gromacs => [42.0, 44.0, 48.0, 44.0, 59.0],
        AppKind::Alya => [93.0, 93.0, 93.0, 93.0, 93.0],
        AppKind::Wrf => [25.0, 33.0, 32.0, 31.0, 31.0],
        AppKind::NasBt => [97.0, 98.0, 98.0, 98.0, 98.0],
        AppKind::NasMg => [74.0, 79.0, 70.0, 74.0, 74.0],
    }
}

/// Table IV at 16 ranks: (PPA-invoking calls %, overhead per invoking
/// call µs, overhead per call µs).
pub fn table4(app: AppKind) -> (f64, f64, f64) {
    match app {
        AppKind::Gromacs => (4.7, 25.1, 2.1),
        AppKind::Alya => (1.2, 16.1, 1.2),
        AppKind::Wrf => (0.4, 7.8, 1.1),
        AppKind::NasBt => (3.7, 6.9, 1.1),
        AppKind::NasMg => (0.5, 26.4, 1.05),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_match_paper_headlines() {
        // Fig. 9a: maximum average power reduction 33.52% at 8/9 ranks.
        let avg: f64 = AppKind::ALL
            .iter()
            .map(|&a| savings_disp1(a)[0])
            .sum::<f64>()
            / 5.0;
        assert!((avg - 33.52).abs() < 0.01, "avg {avg}");
        // Fig. 7a: 30.6% at 10% displacement.
        let avg10: f64 = AppKind::ALL
            .iter()
            .map(|&a| savings_disp10(a)[0])
            .sum::<f64>()
            / 5.0;
        assert!((avg10 - 30.6).abs() < 0.01, "avg {avg10}");
    }

    #[test]
    fn displacement_dispatch() {
        assert_eq!(savings(AppKind::Alya, 0.01), savings_disp1(AppKind::Alya));
        assert_eq!(savings(AppKind::Alya, 0.05), savings_disp5(AppKind::Alya));
        assert_eq!(savings(AppKind::Alya, 0.10), savings_disp10(AppKind::Alya));
    }

    #[test]
    fn monotone_savings_with_smaller_displacement() {
        // Smaller displacement ⇒ larger savings, app by app, scale by
        // scale (the paper's central trade-off).
        for app in AppKind::ALL {
            let (d1, d5, d10) = (savings_disp1(app), savings_disp5(app), savings_disp10(app));
            for i in 0..5 {
                assert!(d1[i] >= d5[i] && d5[i] >= d10[i], "{app:?} col {i}");
            }
        }
    }
}
