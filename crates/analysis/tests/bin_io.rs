//! End-to-end IO-failure behaviour of the exhibit binaries: a broken
//! results directory must produce a **nonzero exit** and an error that
//! names the failing path — never a zero exit with silently missing
//! output (the old `.ok()` behaviour this replaces).

use std::process::Command;

/// Spawn the `table4` binary with `IBP_RESULTS_DIR` pointing at a
/// regular file, so the results directory cannot be created. (A
/// read-only directory is not usable here: these tests run as root in
/// CI containers, and root bypasses permission bits.)
#[test]
fn blocked_results_dir_fails_fast_with_the_path() {
    let blocked = std::env::temp_dir().join(format!("ibp-blocked-bin-{}", std::process::id()));
    std::fs::write(&blocked, b"squatter").expect("plant blocking file");
    let out = Command::new(env!("CARGO_BIN_EXE_table4"))
        .env("IBP_RESULTS_DIR", &blocked)
        .output()
        .expect("spawn table4");
    std::fs::remove_file(&blocked).ok();
    assert!(
        !out.status.success(),
        "blocked results dir must exit nonzero (got {:?})",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(
        stderr.contains(&blocked.display().to_string()),
        "stderr must name the failing path: {stderr}"
    );
    // Fail-fast: the directory is checked before any simulation runs,
    // so nothing should have been printed to stdout yet.
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("Table IV"),
        "must fail before computing the exhibit"
    );
}

#[test]
fn malformed_jobs_flag_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_table4"))
        .arg("--jobs")
        .arg("zero")
        .output()
        .expect("spawn table4");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad --jobs"), "stderr: {stderr}");
}
