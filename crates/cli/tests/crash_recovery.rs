//! Crash-recovery end to end, against the real `ibpower` binary:
//! a store-backed server is killed with SIGKILL mid-stream, restarted
//! on the same store, and every session resumes to byte-perfect parity
//! with the offline annotate path — for all five paper applications.

use ibp_core::{annotate_rank, PowerConfig};
use ibp_serve::{Client, Endpoint};
use ibp_workloads::AppKind;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibp-crash-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn `ibpower serve` on `sock` with `store`, and wait until it
/// accepts connections.
fn spawn_server(sock: &PathBuf, store: &PathBuf, extra: &[&str]) -> Child {
    let child = Command::new(env!("CARGO_BIN_EXE_ibpower"))
        .arg("serve")
        .arg("--uds")
        .arg(sock)
        .arg("--store")
        .arg(store)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ibpower serve");
    let endpoint = Endpoint::Unix(sock.clone());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(&endpoint) {
            Ok(probe) => {
                probe.abandon();
                return child;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("server never came up on {sock:?}: {e}"),
        }
    }
}

#[test]
fn sigkill_mid_stream_resumes_to_parity_for_every_app() {
    for app in AppKind::ALL {
        let nprocs = app.workload().paper_procs()[0];
        let dir = temp_dir(app.name());
        let sock = dir.join("serve.sock");
        let store = dir.join("store");
        let cfg = PowerConfig::default();
        let trace = app.workload().generate(nprocs, 42);

        // Two sessions per app keep the five-app sweep fast while still
        // exercising concurrent resume.
        let sessions = 2usize;
        let specs: Vec<_> = (0..sessions)
            .map(|i| {
                let rank = &trace.ranks[i % nprocs as usize];
                let events: Vec<(u16, u64)> = rank
                    .call_stream()
                    .map(|(call, gap)| (call.id(), gap.as_ns()))
                    .collect();
                let golden = annotate_rank(rank, &cfg);
                (rank.rank, events, rank.final_compute.as_ns(), golden)
            })
            .collect();

        // Phase 1: stream ~60% of each session, never close, SIGKILL.
        let mut server = spawn_server(&sock, &store, &["--persist-every", "24", "--workers", "2"]);
        let endpoint = Endpoint::Unix(sock.clone());
        let mut cut_at = Vec::new();
        let mut clients = Vec::new();
        for (sid, (rank, events, _, _)) in specs.iter().enumerate() {
            let mut c = Client::connect(&endpoint).expect("connect");
            c.open(sid as u32, *rank, &cfg).expect("open");
            let cut = (events.len() * 3 / 5).max(1);
            for chunk in events[..cut].chunks(48) {
                c.send_events(sid as u32, chunk).expect("stream");
            }
            cut_at.push(cut as u64);
            clients.push(c); // keep the connection open across the kill
        }
        // Give in-flight periodic persists a moment to land, then crash
        // the server without any cleanup.
        std::thread::sleep(Duration::from_millis(150));
        server.kill().expect("SIGKILL server");
        let _ = server.wait();
        for c in clients {
            c.abandon();
        }

        // Phase 2: restart on the same store; every session rehydrates
        // and resumes to full-stream parity.
        let mut server = spawn_server(&sock, &store, &["--persist-every", "24"]);
        for (sid, (_, events, final_ns, golden)) in specs.iter().enumerate() {
            let mut c = Client::connect(&endpoint).expect("reconnect");
            let (resume_at, history) =
                c.restore_from_store(sid as u32).expect("rehydrate from store");
            assert!(
                resume_at <= cut_at[sid],
                "{}: cannot resume past the crash point ({resume_at} > {})",
                app.name(),
                cut_at[sid]
            );
            assert!(
                resume_at > 0,
                "{}: periodic persistence never captured the session",
                app.name()
            );
            assert_eq!(
                history.as_slice(),
                &golden.directives[..history.len()],
                "{}: replayed history diverges from the offline path",
                app.name()
            );
            let mut journal = history;
            for chunk in events[resume_at as usize..].chunks(48) {
                let (_, d) = c.send_events(sid as u32, chunk).expect("resume");
                journal.extend(d);
            }
            let (tail, _, stats) = c.close(sid as u32, *final_ns).expect("close");
            journal.extend(tail);
            assert_eq!(
                &journal,
                &golden.directives,
                "{}: resumed session lost parity",
                app.name()
            );
            assert_eq!(&stats, &golden.stats, "{}: stats diverged", app.name());
        }
        server.kill().expect("stop server");
        let _ = server.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn cli_load_with_chaos_passes_parity_across_a_restart() {
    let dir = temp_dir("cli-chaos");
    let sock = dir.join("serve.sock");
    let store = dir.join("store");

    let run_load = || {
        let out = Command::new(env!("CARGO_BIN_EXE_ibpower"))
            .args(["load", "alya", "4", "--uds"])
            .arg(&sock)
            .args([
                "--sessions", "4", "--batch", "23", "--check", "--chaos", "0.04",
                "--retries", "16", "--deadline-ms", "20000",
            ])
            .output()
            .expect("run ibpower load");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "load failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("parity     : ok"), "no parity line:\n{stdout}");
        stdout
    };

    let mut server = spawn_server(&sock, &store, &["--persist-every", "64"]);
    run_load();
    // Crash hard, restart on the same store, and load again: recovery
    // must leave the server fully serviceable.
    server.kill().expect("SIGKILL server");
    let _ = server.wait();
    let mut server = spawn_server(&sock, &store, &["--persist-every", "64"]);
    run_load();
    server.kill().expect("stop server");
    let _ = server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
