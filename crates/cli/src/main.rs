//! The `ibpower` binary: see [`ibpower_cli::USAGE`].

mod signal;

use ibp_core::annotate_trace;
use ibp_network::{replay, LinkPower, ReplayOptions, SimParams};
use ibp_simcore::{SimDuration, SimTime};
use ibp_trace::{ActivityProfile, CallProfile, CommMatrix, IdleDistribution, Trace};
use ibpower_cli::{
    fault_config, parse, power_config, power_config_resilient, workload_of, Command, USAGE,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    ibp_trace::io::load(path).map_err(|e| format!("loading {path}: {e}"))
}

/// Render a [`ibp_serve::ObsReport`] as the `ibstat`-style text block
/// `stat` prints once and `top` refreshes: a server-wide header, then
/// one row per probed link (session) with its live power state, lane
/// width, signalling rate, misprediction counters, resilience windows,
/// and fault-injection rate.
fn render_report(ep: &ibp_serve::Endpoint, report: &ibp_serve::ObsReport) -> String {
    use std::fmt::Write as _;
    let s = &report.server;
    let sum = &s.summary;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ibp-serve @ {ep}: {} live session(s), {} worker(s)",
        s.sessions_live, s.workers
    );
    let _ = writeln!(
        out,
        "counters : {} opened / {} closed, {} events, {} directives",
        sum.sessions_opened, sum.sessions_closed, sum.events_applied, sum.directives_sent
    );
    let _ = writeln!(
        out,
        "health   : {} shed, {} panics, {} respawns, {} protocol errors",
        sum.responses_shed, sum.worker_panics, sum.worker_respawns, sum.protocol_errors
    );
    let _ = writeln!(
        out,
        "queues   : ready {} (limit {}/session), writer {}",
        s.ready_queue_depth, s.queue_depth_limit, s.writer_queue_depth
    );
    if s.max_hot_sessions.is_some() || s.cold_sessions > 0 {
        let cap = s
            .max_hot_sessions
            .map(|n| n.to_string())
            .unwrap_or_else(|| "off".into());
        let _ = writeln!(
            out,
            "paging   : {} hot / {} cold (cap {cap}), {} evictions, {} rehydrations",
            s.hot_sessions, s.cold_sessions, sum.evictions, sum.sessions_rehydrated
        );
    }
    if let Some(st) = &s.store {
        let _ = writeln!(
            out,
            "store    : {} record(s), {} closed, {} complete histories \
             ({} persisted, {} failures, {} rehydrated)",
            st.sessions,
            st.closed,
            st.complete_histories,
            sum.snapshots_persisted,
            sum.persist_failures,
            sum.sessions_rehydrated
        );
    }
    if let Some(f) = s.chaos_intensity {
        let _ = writeln!(out, "chaos    : {f:.3} faults/io-call injected on every connection");
    }
    if report.sessions.is_empty() {
        let _ = writeln!(out, "\n(no live sessions)");
        return out;
    }
    let _ = writeln!(
        out,
        "\n{:<5} {:<5} {:<4} {:<6} {:<5} {:<5} {:>5} {:>9} {:>7} {:>9} {:>8} {:>4} {:>5} {:>7} {:>9} {:>6}",
        "SESS",
        "RANK",
        "GEN",
        "STATE",
        "DEPTH",
        "WIDTH",
        "GB/S",
        "EVENTS",
        "DIRS",
        "MISP(P/T)",
        "WIN(P/T)",
        "HOLD",
        "GUARD",
        "PHASE",
        "IDLE-US",
        "FAULTS"
    );
    for p in &report.sessions {
        // A busy row means the probe raced a worker holding the engine;
        // only identity and queue depth are live, so render the link
        // columns as unknown rather than the placeholder defaults. The
        // generation is hardware identity, not engine state — always
        // live.
        let (state, depth, width, speed) = if p.busy {
            ("busy".to_string(), "-", "-".to_string(), "-".to_string())
        } else {
            (
                p.power_state.label().to_string(),
                p.sleep_depth.map_or("-", ibp_core::SleepKind::label),
                format!("{}X", p.lane_width),
                format!("{:.0}", p.power_state.speed_gbps()),
            )
        };
        let phase = match (p.pattern_slot, p.pattern_slots) {
            (Some(slot), Some(slots)) => format!("{slot}/{slots}"),
            _ => "-".to_string(),
        };
        let idle = p
            .predicted_idle_ns
            .map(|ns| format!("{:.1}", ns as f64 / 1_000.0))
            .unwrap_or_else(|| "-".to_string());
        let faults = s
            .chaos_intensity
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<5} {:<5} {:<4} {:<6} {:<5} {:<5} {:>5} {:>9} {:>7} {:>9} {:>8} {:>4} {:>5} {:>7} {:>9} {:>6}",
            p.session,
            p.rank,
            p.generation.name(),
            state,
            depth,
            width,
            speed,
            p.events_applied,
            p.directives_sent,
            format!("{}/{}", p.pattern_mispredictions, p.timing_mispredictions),
            format!("{}/{}", p.recent_pattern_window, p.recent_timing_window),
            p.holdoff_remaining,
            format!("{:.2}", p.guard_band),
            phase,
            idle,
            faults
        );
    }
    out
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Generate {
            app,
            nprocs,
            seed,
            weak,
            output,
        } => {
            let w = workload_of(&app, weak).expect("validated by parse");
            if !w.valid_nprocs(nprocs) {
                return Err(format!("{app} cannot run at {nprocs} ranks"));
            }
            let trace = w.generate(nprocs, seed);
            println!(
                "{}: {} ranks, {} MPI calls{}",
                trace.name,
                trace.nprocs,
                trace.total_calls(),
                if weak { " (weak scaling)" } else { "" }
            );
            if let Some(path) = output {
                ibp_trace::io::save(&trace, &path).map_err(|e| format!("writing {path}: {e}"))?;
                println!("written to {path}");
            }
            Ok(())
        }
        Command::Inspect { trace } => {
            let t = load_trace(&trace)?;
            println!("trace   : {} ({} ranks, {} calls)", t.name, t.nprocs, t.total_calls());

            let idle = IdleDistribution::from_trace(&t);
            println!(
                "idle    : {} intervals, {:.1}% of idle time exploitable (> 20 us)",
                idle.total_intervals,
                idle.exploitable_time_pct()
            );
            println!(
                "          buckets: <20us {:.1}% | 20-200us {:.1}% | >200us {:.1}% (of intervals)",
                idle.short.interval_pct, idle.medium.interval_pct, idle.long.interval_pct
            );

            let prof = CallProfile::of(&t);
            println!("calls   :");
            for (id, s) in &prof.by_call {
                println!(
                    "          id {id:>3}: {:>8} calls, {:>12} B sent, {} idle before",
                    s.count, s.send_bytes, s.preceding_idle
                );
            }
            if let Some(guard) = prof.dominant_idle_guard() {
                println!("          dominant idle guard: {guard}");
            }

            let m = CommMatrix::of(&t);
            println!(
                "p2p     : {} bytes over {} pairs{}",
                m.total(),
                m.pairs(),
                if m.is_symmetric() { " (symmetric)" } else { "" }
            );

            let act = ActivityProfile::of(&t, SimDuration::from_ms(1));
            println!(
                "activity: peak {} calls/ms, {:.0}% of 1 ms windows quiet",
                act.peak(),
                100.0 * act.quiet_fraction()
            );
            Ok(())
        }
        Command::Annotate {
            trace,
            gt_us,
            displacement,
            resilient,
            budget,
            output,
        } => {
            let t = load_trace(&trace)?;
            let cfg = power_config_resilient(gt_us, displacement, resilient, budget);
            let ann = annotate_trace(&t, &cfg);
            let agg = ann.aggregate_stats();
            println!("hit rate            : {:.1}%", agg.hit_rate_pct());
            println!("lane-off directives : {}", ann.total_directives());
            println!("pattern mispredicts : {}", agg.pattern_mispredictions);
            println!("late wake-ups       : {}", agg.timing_mispredictions);
            if cfg.resilience.enabled {
                println!(
                    "resilience          : {} storms, {} held-off calls, {} suppressed directives",
                    agg.storms, agg.holdoff_calls, agg.suppressed_directives
                );
            }
            println!(
                "PPA overhead        : {:.2}% of calls, {:.1} us per invoking call",
                agg.ppa_invocation_pct(),
                agg.overhead_per_invoked_call_us()
            );
            println!(
                "estimated saving    : {:.1}% (quick estimate, no replay)",
                ann.mean_est_power_saving_pct(cfg.low_power_fraction)
            );
            if let Some(path) = output {
                let json = serde_json::to_string(&ann.ranks).map_err(|e| e.to_string())?;
                std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
                println!("annotations written to {path}");
            }
            Ok(())
        }
        Command::Replay {
            trace,
            ann,
            fault_rate,
            fault_seed,
            timeline,
        } => {
            let t = load_trace(&trace)?;
            let annotations = match &ann {
                Some(path) => {
                    let json =
                        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                    let ranks: Vec<ibp_core::RankAnnotation> =
                        serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))?;
                    Some(ibp_core::TraceAnnotations { ranks })
                }
                None => None,
            };
            let opts = ReplayOptions {
                record_timelines: timeline,
                faults: fault_config(fault_rate, fault_seed),
                ..ReplayOptions::default()
            };
            let result = replay(&t, annotations.as_ref(), &SimParams::paper(), &opts)
                .map_err(|e| format!("replay: {e}"))?;
            println!("execution time : {}", result.exec_time);
            println!("messages       : {} ({} bytes)", result.fabric.messages, result.fabric.bytes);
            println!("contended      : {}", result.fabric.contended);
            if annotations.is_some() {
                println!("power saving   : {:.1}%", result.power_saving_pct());
            }
            if result.faults.total_events() > 0 {
                println!(
                    "faults         : {} wake misfires ({} stall), {} flaps ({} outage), {} degraded sends ({} extra)",
                    result.faults.wake_misfires,
                    result.faults.misfire_stall,
                    result.faults.link_flaps,
                    result.faults.flap_delay,
                    result.faults.degraded_sends,
                    result.faults.degraded_extra,
                );
            }
            if timeline {
                let tls = result.timelines.as_ref().expect("requested");
                let end = tls
                    .iter()
                    .map(|x| x.last_transition())
                    .max()
                    .unwrap_or(SimTime::ZERO)
                    .max(SimTime::ZERO + result.exec_time);
                let rows: Vec<(String, &ibp_simcore::StateTimeline<LinkPower>)> = tls
                    .iter()
                    .enumerate()
                    .take(32)
                    .map(|(r, tl)| (format!("rank {r:>3}"), tl))
                    .collect();
                print!(
                    "{}",
                    ibp_trace::viz::render_timelines(&rows, end, 100, |s| match s {
                        LinkPower::Low => '.',
                        LinkPower::Rate => '-',
                        LinkPower::Deep => 'o',
                        LinkPower::Full => '#',
                        LinkPower::Transition => '+',
                    })
                );
            }
            Ok(())
        }
        Command::Experiment {
            app,
            nprocs,
            gt_us,
            displacement,
            seed,
            fault_rate,
            fault_seed,
            resilient,
            budget,
        } => {
            let w = workload_of(&app, false).expect("validated by parse");
            if !w.valid_nprocs(nprocs) {
                return Err(format!("{app} cannot run at {nprocs} ranks"));
            }
            let trace = w.generate(nprocs, seed);
            let cfg = power_config_resilient(gt_us, displacement, resilient, budget);
            let params = SimParams::paper();
            let opts = ReplayOptions {
                faults: fault_config(fault_rate, fault_seed),
                ..ReplayOptions::default()
            };
            let ann = annotate_trace(&trace, &cfg);
            let baseline = replay(&trace, None, &params, &opts)
                .map_err(|e| format!("baseline replay: {e}"))?;
            let managed = replay(&trace, Some(&ann), &params, &opts)
                .map_err(|e| format!("managed replay: {e}"))?;
            println!(
                "{app} @{nprocs}: GT {gt_us} us, displacement {:.0}%",
                displacement * 100.0
            );
            println!("hit rate      : {:.1}%", ann.mean_hit_rate_pct());
            println!("baseline exec : {}", baseline.exec_time);
            println!("managed exec  : {}", managed.exec_time);
            println!("slowdown      : {:.3}%", managed.slowdown_pct(&baseline));
            println!("power saving  : {:.1}%", managed.power_saving_pct());
            if fault_rate > 0.0 {
                println!(
                    "faults        : {} events, {} charged (managed run)",
                    managed.faults.total_events(),
                    managed.faults.total_charged()
                );
            }
            if cfg.resilience.enabled {
                let agg = ann.aggregate_stats();
                println!(
                    "resilience    : {} storms, {} held-off calls, {} suppressed directives",
                    agg.storms, agg.holdoff_calls, agg.suppressed_directives
                );
            }
            Ok(())
        }
        Command::Exhibits {
            name,
            jobs,
            serial,
            seed,
            out,
        } => {
            use ibp_analysis::{exhibits, ExhibitGrid, OutputDir, SweepEngine, SweepOptions};
            let mut opts = if jobs == 0 {
                SweepOptions::from_env()
            } else {
                SweepOptions::with_jobs(jobs)
            };
            if serial {
                opts.parallel = false;
            }
            let engine = SweepEngine::new(opts);
            let grid = ExhibitGrid::paper();
            let out = match out {
                Some(dir) => OutputDir::new(dir),
                None => OutputDir::default_dir(),
            }
            .map_err(|e| e.to_string())?;
            let io = |e: std::io::Error| format!("writing under {}: {e}", out.root().display());
            match name.as_str() {
                "table1" => {
                    let rows = exhibits::table1(&engine, &grid, seed);
                    print!("{}", exhibits::render_table1(&rows));
                    out.write_json("table1.json", &rows).map_err(io)?;
                }
                "table3" => {
                    let rows = exhibits::table3(&engine, &grid, seed);
                    print!("{}", exhibits::render_table3(&rows));
                    out.write_json("table3.json", &rows).map_err(io)?;
                }
                "table4" => {
                    let rows = exhibits::table4(&engine, seed);
                    print!("{}", exhibits::render_table4(&rows));
                    out.write_json("table4.json", &rows).map_err(io)?;
                }
                "fig7" | "fig8" | "fig9" => {
                    let disp = match name.as_str() {
                        "fig7" => 0.10,
                        "fig8" => 0.05,
                        _ => 0.01,
                    };
                    let fig = exhibits::figure(&engine, &grid, disp, seed);
                    print!("{}", exhibits::render_figure(&fig));
                    out.write_json(&format!("{name}.json"), &fig).map_err(io)?;
                }
                "fig10" => {
                    let data = exhibits::fig10(&engine, seed);
                    print!("{}", exhibits::render_fig10(&data));
                    out.write_json("fig10.json", &data).map_err(io)?;
                }
                "generation_frontier" => {
                    let rows = ibp_analysis::generation_frontier(&engine, seed)
                        .map_err(|e| format!("generation_frontier: {e}"))?;
                    print!("{}", ibp_analysis::render_generation_frontier(&rows));
                    out.write_json("generation_frontier.json", &rows).map_err(io)?;
                }
                "all" => {
                    let t1 = exhibits::table1(&engine, &grid, seed);
                    out.write_json("table1.json", &t1).map_err(io)?;
                    let t3 = exhibits::table3(&engine, &grid, seed);
                    out.write_json("table3.json", &t3).map_err(io)?;
                    let t4 = exhibits::table4(&engine, seed);
                    out.write_json("table4.json", &t4).map_err(io)?;
                    for (fname, disp) in [("fig7", 0.10), ("fig8", 0.05), ("fig9", 0.01)] {
                        let fig = exhibits::figure(&engine, &grid, disp, seed);
                        out.write_json(&format!("{fname}.json"), &fig).map_err(io)?;
                    }
                    let f10 = exhibits::fig10(&engine, seed);
                    out.write_json("fig10.json", &f10).map_err(io)?;
                    let frontier = ibp_analysis::generation_frontier(&engine, seed)
                        .map_err(|e| format!("generation_frontier: {e}"))?;
                    out.write_json("generation_frontier.json", &frontier).map_err(io)?;
                    println!("all exhibit JSONs written to {}", out.root().display());
                }
                other => unreachable!("validated by parse: {other}"),
            }
            let stats = engine.stats();
            out.write_stats(&name, &stats).map_err(io)?;
            eprintln!(
                "sweep: {} cells, {} job(s), {} traces generated / {} hits, {:.1}s",
                stats.cells,
                stats.jobs,
                stats.traces_generated,
                stats.trace_hits,
                stats.wall_ms as f64 / 1000.0
            );
            Ok(())
        }
        Command::BenchReport {
            output,
            check,
            iters,
            reps,
            label,
        } => {
            use ibp_bench::hotpath::{
                ReportEntry, Trajectory, INTERCEPT_PROBE, LADDER_PROBE, REPLAY_BIG_PROBE,
                REPLAY_PROBE, SCALE_PROBE, SERVE_PROBE,
            };
            let mut traj: Trajectory = match std::fs::read_to_string(&output) {
                Ok(json) => serde_json::from_str(&json).map_err(|e| format!("{output}: {e}"))?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Trajectory::default(),
                Err(e) => return Err(format!("{output}: {e}")),
            };
            let probes = ibp_bench::hotpath::run_all(iters, reps);
            let entry = ReportEntry {
                label: label.unwrap_or_else(|| format!("run-{}", traj.entries.len())),
                probes,
            };
            println!("bench-report: {} ({iters} iters, {reps} reps)", entry.label);
            for p in &entry.probes {
                println!("  {:<28} {:>10.1} ns/elem  ({} elems)", p.name, p.ns_per_elem, p.elems);
            }
            if check {
                let prev = traj
                    .entries
                    .last()
                    .and_then(|e| e.probe(INTERCEPT_PROBE))
                    .ok_or_else(|| {
                        format!("--check: no prior {INTERCEPT_PROBE} entry in {output}")
                    })?;
                let now = entry
                    .probe(INTERCEPT_PROBE)
                    .expect("run_all always emits the intercept probe");
                let ratio = now.ns_per_elem / prev.ns_per_elem;
                println!(
                    "  check: {INTERCEPT_PROBE} {:.1} -> {:.1} ns ({:+.1}%)",
                    prev.ns_per_elem,
                    now.ns_per_elem,
                    (ratio - 1.0) * 100.0
                );
                if ratio > 1.25 {
                    return Err(format!(
                        "intercept path regressed {:.0}% (> 25% gate): {:.1} ns vs {:.1} ns baseline",
                        (ratio - 1.0) * 100.0,
                        now.ns_per_elem,
                        prev.ns_per_elem
                    ));
                }
                // These probes cross a real socket (serve) or measure
                // whole-engine wall time (replay), so they are noisier
                // than the in-process intercept probe: gate at 50%, and
                // only once the baseline entry records the probe at all
                // (older entries predate each probe's introduction).
                let gate_50 = |probe_name: &str| -> Result<(), String> {
                    let Some(prev) = traj.entries.last().and_then(|e| e.probe(probe_name)) else {
                        return Ok(());
                    };
                    let now = entry
                        .probe(probe_name)
                        .expect("run_all emits every gated probe");
                    let ratio = now.ns_per_elem / prev.ns_per_elem;
                    println!(
                        "  check: {probe_name} {:.1} -> {:.1} ns ({:+.1}%)",
                        prev.ns_per_elem,
                        now.ns_per_elem,
                        (ratio - 1.0) * 100.0
                    );
                    if ratio > 1.5 {
                        return Err(format!(
                            "{probe_name} regressed {:.0}% (> 50% gate): {:.1} ns vs {:.1} ns baseline",
                            (ratio - 1.0) * 100.0,
                            now.ns_per_elem,
                            prev.ns_per_elem
                        ));
                    }
                    Ok(())
                };
                gate_50(SERVE_PROBE)?;
                gate_50(SCALE_PROBE)?;
                gate_50(REPLAY_PROBE)?;
                gate_50(REPLAY_BIG_PROBE)?;
                gate_50(LADDER_PROBE)?;
            }
            traj.entries.push(entry);
            let json = serde_json::to_string_pretty(&traj).map_err(|e| e.to_string())?;
            std::fs::write(&output, json + "\n").map_err(|e| format!("{output}: {e}"))?;
            println!("trajectory written to {output}");
            Ok(())
        }
        Command::Serve {
            endpoint,
            workers,
            io_threads,
            max_hot_sessions,
            queue,
            stats_every,
            session_limit,
            store,
            persist_every,
            write_queue,
            idle_timeout_ms,
            write_timeout_ms,
            metrics_addr,
        } => {
            if max_hot_sessions.is_some() && store.is_none() {
                return Err("--max-hot-sessions needs --store (evicted engines live there)".into());
            }
            let ep = endpoint.to_endpoint();
            let cfg = ibp_serve::ServeConfig {
                workers,
                io_threads,
                max_hot_sessions,
                queue_depth: queue,
                stats_every,
                session_limit,
                write_queue,
                idle_timeout_ms,
                write_timeout_ms,
                persist_every,
                chaos: None,
                panic_on_call: None,
                metrics_addr,
            };
            let mut server =
                ibp_serve::Server::bind(&ep, cfg).map_err(|e| format!("binding {ep}: {e}"))?;
            if let Some(dir) = store {
                let (store, recovery) = ibp_serve::SnapshotStore::open(std::path::Path::new(&dir))
                    .map_err(|e| format!("opening store {dir}: {e}"))?;
                eprintln!(
                    "store      : {dir} ({} sessions recovered{}{})",
                    recovery.loaded,
                    if recovery.manifest_ok { "" } else { ", manifest healed" },
                    if recovery.skipped.is_empty() {
                        String::new()
                    } else {
                        format!(", {} unusable records skipped", recovery.skipped.len())
                    }
                );
                for (file, reason) in &recovery.skipped {
                    eprintln!("             skipped {file}: {reason}");
                }
                server = server.with_store(std::sync::Arc::new(store));
            }
            eprintln!(
                "serving on {} ({workers} workers, {io_threads} io threads{})",
                server.endpoint(),
                max_hot_sessions
                    .map(|n| format!(", hot cap {n}"))
                    .unwrap_or_default()
            );
            if let Some(addr) = server.metrics_endpoint() {
                eprintln!("metrics    : http://{addr}/metrics (Prometheus text exposition)");
            }
            // SIGINT/SIGTERM raise the stop flag and poke the reactor's
            // shutdown eventfd: the event loops wake immediately,
            // in-flight work quiesces, and store-backed sessions are
            // persisted before exit.
            signal::drain_on_signals(server.stop_flag(), server.wake_fd());
            let summary = server.run();
            println!(
                "sessions   : {} opened, {} closed",
                summary.sessions_opened, summary.sessions_closed
            );
            println!("events     : {} applied", summary.events_applied);
            println!("directives : {} streamed", summary.directives_sent);
            if summary.sessions_rehydrated > 0 {
                println!("rehydrated : {} sessions from the store", summary.sessions_rehydrated);
            }
            if summary.evictions > 0 {
                println!("evicted    : {} hot engines paged to the store", summary.evictions);
            }
            if summary.snapshots_persisted > 0 || summary.persist_failures > 0 {
                println!(
                    "persisted  : {} records{}",
                    summary.snapshots_persisted,
                    if summary.persist_failures > 0 {
                        format!(" ({} failures)", summary.persist_failures)
                    } else {
                        String::new()
                    }
                );
            }
            if summary.responses_shed > 0 {
                println!("shed       : {} responses to overloaded connections", summary.responses_shed);
            }
            if summary.worker_panics > 0 || summary.worker_respawns > 0 {
                println!(
                    "panics     : {} isolated, {} workers respawned",
                    summary.worker_panics, summary.worker_respawns
                );
            }
            if summary.protocol_errors > 0 {
                println!("errors     : {} protocol errors", summary.protocol_errors);
            }
            Ok(())
        }
        Command::Load {
            app,
            nprocs,
            endpoint,
            sessions,
            batch,
            seed,
            split,
            check,
            gt_us,
            displacement,
            chaos,
            chaos_seed,
            retries,
            deadline_ms,
            drivers,
            open_rate,
            events_per_session,
            scale_curve,
            output,
        } => {
            let w = workload_of(&app, false).expect("validated by parse");
            if !w.valid_nprocs(nprocs) {
                return Err(format!("{app} cannot run at {nprocs} ranks"));
            }
            let trace = w.generate(nprocs, seed);
            let cfg = power_config(gt_us, displacement);
            // --events-per-session truncates every stream to its first N
            // events (the mostly-idle mix for scaling runs). Parity
            // goldens cannot come from annotate_rank then — it annotates
            // the full rank — so truncated scale runs skip --check's
            // golden comparison rather than compare against the wrong
            // reference.
            if events_per_session > 0 && check {
                return Err(
                    "--events-per-session truncates streams; offline goldens cover full \
                     ranks only, so combining it with --check would compare against the \
                     wrong reference"
                        .into(),
                );
            }
            let specs: Vec<ibp_serve::SessionSpec> = (0..sessions)
                .map(|i| {
                    let rank = &trace.ranks[i % nprocs as usize];
                    let golden = check.then(|| ibp_core::annotate_rank(rank, &cfg));
                    let mut events: Vec<(u16, u64)> = rank
                        .call_stream()
                        .map(|(call, gap)| (call.id(), gap.as_ns()))
                        .collect();
                    if events_per_session > 0 {
                        events.truncate(events_per_session);
                    }
                    ibp_serve::SessionSpec {
                        rank: rank.rank,
                        config: cfg.clone(),
                        events,
                        final_compute_ns: rank.final_compute.as_ns(),
                        golden_directives: golden.as_ref().map(|g| g.directives.clone()),
                        golden_stats: golden.map(|g| g.stats),
                    }
                })
                .collect();
            let ep = endpoint.to_endpoint();
            let load_cfg = ibp_serve::LoadConfig {
                batch,
                split,
                check,
                chaos: chaos.map(|f| ibp_serve::ChaosConfig::with_intensity(chaos_seed, f)),
                retry: ibp_serve::RetryPolicy {
                    max_attempts: retries,
                    deadline_ms,
                    ..Default::default()
                },
                drivers,
                open_rate,
            };
            let report = ibp_serve::run_load(&ep, specs, &load_cfg)
                .map_err(|e| format!("load against {ep}: {e}"))?;
            println!(
                "{app} @{nprocs}: {} sessions, batch {batch}{}{}{}",
                report.sessions,
                split.map(|f| format!(", split {f}")).unwrap_or_default(),
                chaos.map(|f| format!(", chaos {f}")).unwrap_or_default(),
                if drivers > 0 { format!(", {drivers} drivers") } else { String::new() }
            );
            println!(
                "events     : {} in {:.2} s  ({:.0} events/s)",
                report.events_total, report.elapsed_s, report.events_per_sec
            );
            println!(
                "directives : {} over {} batches",
                report.directives_total, report.batches
            );
            println!(
                "latency    : p50 {:.1} us, p99 {:.1} us, max {:.1} us",
                report.latency_p50_us, report.latency_p99_us, report.latency_max_us
            );
            if report.reconnects > 0 {
                println!("reconnects : {} cycles survived", report.reconnects);
            }
            if report.gave_up > 0 {
                println!(
                    "gave up    : {} session(s) abandoned after exhausting --retries",
                    report.gave_up
                );
            }
            if report.parity_checked {
                println!(
                    "parity     : {}",
                    if report.parity_ok { "ok (matches offline annotate)" } else { "MISMATCH" }
                );
            }
            if let Some(path) = scale_curve {
                // Append one {sessions, drivers, throughput, latency}
                // point to the `scaling` array of the benchmark JSON,
                // creating file and array as needed. Everything else in
                // the file (e.g. the 8-session baseline report) is
                // preserved.
                use serde::Value;
                let mut doc: Value = match std::fs::read_to_string(&path) {
                    Ok(json) => serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))?,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Value::Map(Vec::new()),
                    Err(e) => return Err(format!("{path}: {e}")),
                };
                let Value::Map(entries) = &mut doc else {
                    return Err(format!("{path}: top level is not a JSON object"));
                };
                let point = Value::Map(vec![
                    ("sessions".into(), Value::U64(report.sessions as u64)),
                    ("drivers".into(), Value::U64(drivers as u64)),
                    ("open_rate".into(), Value::U64(open_rate)),
                    ("events_per_session".into(), Value::U64(events_per_session as u64)),
                    ("events_total".into(), Value::U64(report.events_total)),
                    ("events_per_sec".into(), Value::F64(report.events_per_sec)),
                    ("latency_p50_us".into(), Value::F64(report.latency_p50_us)),
                    ("latency_p99_us".into(), Value::F64(report.latency_p99_us)),
                    ("latency_max_us".into(), Value::F64(report.latency_max_us)),
                ]);
                let scaling = match entries.iter_mut().position(|(k, _)| k == "scaling") {
                    Some(i) => &mut entries[i].1,
                    None => {
                        entries.push(("scaling".into(), Value::Seq(Vec::new())));
                        &mut entries.last_mut().expect("just pushed").1
                    }
                };
                let Value::Seq(points) = scaling else {
                    return Err(format!("{path}: `scaling` is not an array"));
                };
                points.push(point);
                let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
                std::fs::write(&path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
                println!("scaling    : point appended to {path}");
            }
            if let Some(path) = output {
                let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(&path, json + "\n")
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("report written to {path}");
            }
            if report.parity_checked && !report.parity_ok {
                return Err(
                    "parity check failed: streamed directives differ from offline annotation"
                        .into(),
                );
            }
            Ok(())
        }
        Command::Stat { endpoint, session } => {
            let ep = endpoint.to_endpoint();
            let mut client =
                ibp_serve::Client::connect(&ep).map_err(|e| format!("connecting {ep}: {e}"))?;
            let report = match session {
                Some(id) => client.query(id),
                None => client.query_server(),
            }
            .map_err(|e| format!("query against {ep}: {e}"))?;
            print!("{}", render_report(&ep, &report));
            Ok(())
        }
        Command::Top {
            endpoint,
            interval_ms,
            once,
        } => {
            let ep = endpoint.to_endpoint();
            let mut client =
                ibp_serve::Client::connect(&ep).map_err(|e| format!("connecting {ep}: {e}"))?;
            loop {
                let report = client
                    .query_server()
                    .map_err(|e| format!("query against {ep}: {e}"))?;
                if once {
                    print!("{}", render_report(&ep, &report));
                    return Ok(());
                }
                // Clear the screen and re-home before every frame, like
                // `top`; ctrl-C exits.
                print!("\x1b[2J\x1b[H{}", render_report(&ep, &report));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        }
        Command::Prv { trace, output } => {
            let t = load_trace(&trace)?;
            let prv = ibp_trace::paraver::to_prv(&t);
            match output {
                Some(path) => {
                    std::fs::write(&path, prv).map_err(|e| format!("writing {path}: {e}"))?;
                    println!("written to {path}");
                }
                None => print!("{prv}"),
            }
            Ok(())
        }
    }
}
