//! # ibpower-cli — command-line front end
//!
//! A small, dependency-free argument layer over the `ibpower` workspace:
//!
//! ```text
//! ibpower generate <app> <nprocs> [--seed N] [--weak] [-o trace.json]
//! ibpower inspect  <trace.json>
//! ibpower annotate <trace.json> [--gt US] [--disp F] [-o ann.json]
//! ibpower replay   <trace.json> [--ann ann.json] [--timeline]
//! ibpower experiment <app> <nprocs> [--gt US] [--disp F] [--seed N]
//! ibpower prv      <trace.json> [-o out.prv]
//! ibpower serve    (--uds PATH | --tcp ADDR) [--workers N] [--metrics-addr ADDR]
//! ibpower load     <app> <nprocs> (--uds PATH | --tcp ADDR) [--sessions N]
//! ibpower stat     (--uds PATH | --tcp ADDR) [--session N]
//! ibpower top      (--uds PATH | --tcp ADDR) [--interval-ms N] [--once]
//! ```
//!
//! The parsing layer is exposed as a library so it can be unit-tested
//! without spawning processes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ibp_simcore::SimDuration;
use ibp_workloads::{AppKind, Scaling, Workload};

/// Where the streaming service listens (or where the load generator
/// connects): exactly one of `--tcp ADDR` or `--uds PATH`.
#[derive(Debug, Clone, PartialEq)]
pub enum EndpointSpec {
    /// TCP address, e.g. `127.0.0.1:9400`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(String),
}

impl EndpointSpec {
    /// Convert into the serving crate's endpoint type.
    #[must_use]
    pub fn to_endpoint(&self) -> ibp_serve::Endpoint {
        match self {
            EndpointSpec::Tcp(addr) => ibp_serve::Endpoint::Tcp(addr.clone()),
            EndpointSpec::Uds(path) => ibp_serve::Endpoint::Unix(path.into()),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a workload trace.
    Generate {
        /// Application name.
        app: String,
        /// Rank count.
        nprocs: u32,
        /// Generation seed.
        seed: u64,
        /// Weak scaling instead of strong.
        weak: bool,
        /// Output path (stdout summary only if absent).
        output: Option<String>,
    },
    /// Print trace statistics.
    Inspect {
        /// Trace path.
        trace: String,
    },
    /// Run the power-saving runtime over a trace.
    Annotate {
        /// Trace path.
        trace: String,
        /// Grouping threshold, µs.
        gt_us: f64,
        /// Displacement factor.
        displacement: f64,
        /// Enable the misprediction-backoff resilience controller.
        resilient: bool,
        /// Slowdown budget (%, implies `resilient`).
        budget: Option<f64>,
        /// Output path for the annotations JSON.
        output: Option<String>,
    },
    /// Replay a trace (optionally with annotations).
    Replay {
        /// Trace path.
        trace: String,
        /// Annotations path.
        ann: Option<String>,
        /// Link fault-injection rate multiplier (0 = fault-free).
        fault_rate: f64,
        /// Fault-injection RNG seed.
        fault_seed: u64,
        /// Render a link-power timeline.
        timeline: bool,
    },
    /// Full pipeline in one shot: generate + annotate + double replay.
    Experiment {
        /// Application name.
        app: String,
        /// Rank count.
        nprocs: u32,
        /// Grouping threshold, µs.
        gt_us: f64,
        /// Displacement factor.
        displacement: f64,
        /// Generation seed.
        seed: u64,
        /// Link fault-injection rate multiplier (0 = fault-free).
        fault_rate: f64,
        /// Fault-injection RNG seed.
        fault_seed: u64,
        /// Enable the misprediction-backoff resilience controller.
        resilient: bool,
        /// Slowdown budget (%, implies `resilient`).
        budget: Option<f64>,
    },
    /// Export a trace in the simplified Paraver dialect.
    Prv {
        /// Trace path.
        trace: String,
        /// Output path (stdout if absent).
        output: Option<String>,
    },
    /// Regenerate paper exhibits on the parallel sweep engine.
    Exhibits {
        /// Exhibit name (`all`, `table1`, `table3`, `table4`,
        /// `fig7`–`fig10`, `generation_frontier`).
        name: String,
        /// Worker threads (0 = available parallelism / `IBP_JOBS`).
        jobs: usize,
        /// Force the serial escape hatch.
        serial: bool,
        /// Generation seed.
        seed: u64,
        /// Results directory (default `results/`, or `IBP_RESULTS_DIR`).
        out: Option<String>,
    },
    /// Measure the engine's hot paths and append an entry to the
    /// benchmark trajectory file.
    BenchReport {
        /// Trajectory JSON path (appended to; created if absent).
        output: String,
        /// Exit non-zero if the intercept path regressed >25% against
        /// the last recorded entry.
        check: bool,
        /// Stream scale (iterations of the ALYA pattern; 2000 ≈ the
        /// criterion benches' 10k-call stream).
        iters: usize,
        /// Repetitions per probe (minimum is reported).
        reps: u32,
        /// Label stored with the entry (defaults to `run-<n>`).
        label: Option<String>,
    },
    /// Run the streaming prediction server.
    Serve {
        /// Listening endpoint.
        endpoint: EndpointSpec,
        /// Worker threads applying event batches.
        workers: usize,
        /// Event-loop (reactor) threads owning the sockets.
        io_threads: usize,
        /// LRU cap on in-memory session engines; excess sessions are
        /// evicted to the snapshot store and rehydrated on touch
        /// (requires `--store`).
        max_hot_sessions: Option<usize>,
        /// Pending work items per session before its reader blocks.
        queue: usize,
        /// Emit unsolicited stats every N events per session (0 = off).
        stats_every: u64,
        /// Exit after this many sessions close cleanly.
        session_limit: Option<u64>,
        /// Durable snapshot store directory (crash recovery).
        store: Option<String>,
        /// Persist each store-backed session every N applied events
        /// (0 = only on close/drain).
        persist_every: u64,
        /// Outbound frames queued per connection before shedding.
        write_queue: usize,
        /// Drop connections idle for this many ms (0 = never).
        idle_timeout_ms: u64,
        /// Socket write timeout, ms (0 = none).
        write_timeout_ms: u64,
        /// Prometheus text-exposition listener address
        /// (e.g. `127.0.0.1:9401`; absent = no exporter).
        metrics_addr: Option<String>,
    },
    /// Drive a workload's event streams against a running server.
    Load {
        /// Application name.
        app: String,
        /// Rank count.
        nprocs: u32,
        /// Server endpoint to connect to.
        endpoint: EndpointSpec,
        /// Concurrent sessions (connections) to drive.
        sessions: usize,
        /// Events per frame.
        batch: usize,
        /// Generation seed.
        seed: u64,
        /// Snapshot/reconnect/restore at this stream fraction.
        split: Option<f64>,
        /// Verify streamed directives against the offline golden path.
        check: bool,
        /// Grouping threshold, µs.
        gt_us: f64,
        /// Displacement factor.
        displacement: f64,
        /// Transport chaos intensity in (0, 1] (fault injection on
        /// every connection; `None` = healthy transport).
        chaos: Option<f64>,
        /// Chaos fault-stream seed.
        chaos_seed: u64,
        /// Consecutive failed connection attempts before a session
        /// gives up.
        retries: u32,
        /// Per-request response deadline, ms (0 = wait forever).
        deadline_ms: u64,
        /// Scale mode: multiplex all sessions over this many driver
        /// connections (0 = classic one-connection-per-session mode).
        drivers: usize,
        /// Scale mode: cap on session opens per second across all
        /// drivers (0 = unlimited).
        open_rate: u64,
        /// Truncate every session's stream to its first N events
        /// (0 = full stream) — the mostly-idle mix for high-session
        /// scaling runs.
        events_per_session: usize,
        /// Append a `{sessions, events_per_sec, latency_p99_us, ...}`
        /// point to the `scaling` section of this benchmark JSON.
        scale_curve: Option<String>,
        /// Output path for the throughput/latency report JSON.
        output: Option<String>,
    },
    /// One-shot `ibstat`-style live state table from a running server.
    Stat {
        /// Server endpoint to query.
        endpoint: EndpointSpec,
        /// Probe only this session id (absent = the whole fleet).
        session: Option<u32>,
    },
    /// Refreshing live view of a running server (`--once` for scripts).
    Top {
        /// Server endpoint to query.
        endpoint: EndpointSpec,
        /// Refresh interval, milliseconds.
        interval_ms: u64,
        /// Render a single frame and exit (no screen clearing).
        once: bool,
    },
    /// Print usage.
    Help,
}

/// Parse a command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().map(|s| s.as_str()).unwrap_or("help");
    let rest: Vec<&String> = it.collect();

    let flag_val = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let has_flag = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let positional: Vec<&str> = {
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in rest.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with('-') {
                // Flags with values.
                if [
                    "--seed",
                    "--gt",
                    "--disp",
                    "-o",
                    "--ann",
                    "--fault-rate",
                    "--fault-seed",
                    "--budget",
                    "--jobs",
                    "--out",
                    "--iters",
                    "--reps",
                    "--label",
                    "--uds",
                    "--tcp",
                    "--workers",
                    "--queue",
                    "--stats-every",
                    "--session-limit",
                    "--sessions",
                    "--batch",
                    "--split",
                    "--store",
                    "--persist-every",
                    "--write-queue",
                    "--idle-timeout-ms",
                    "--write-timeout-ms",
                    "--chaos",
                    "--chaos-seed",
                    "--retries",
                    "--deadline-ms",
                    "--metrics-addr",
                    "--session",
                    "--interval-ms",
                    "--io-threads",
                    "--max-hot-sessions",
                    "--drivers",
                    "--open-rate",
                    "--events-per-session",
                    "--scale-curve",
                ]
                .contains(&a.as_str())
                {
                    skip = true;
                }
                let _ = i;
                continue;
            }
            out.push(a.as_str());
        }
        out
    };

    let parse_seed = || -> Result<u64, String> {
        match flag_val("--seed") {
            Some(s) => s.parse().map_err(|_| format!("bad --seed: {s}")),
            None => Ok(0xD1C0),
        }
    };
    let parse_gt = || -> Result<f64, String> {
        match flag_val("--gt") {
            Some(s) => s.parse().map_err(|_| format!("bad --gt: {s}")),
            None => Ok(20.0),
        }
    };
    let parse_disp = || -> Result<f64, String> {
        match flag_val("--disp") {
            Some(s) => s.parse().map_err(|_| format!("bad --disp: {s}")),
            None => Ok(0.01),
        }
    };
    let parse_fault_rate = || -> Result<f64, String> {
        match flag_val("--fault-rate") {
            Some(s) => s
                .parse::<f64>()
                .ok()
                .filter(|r| *r >= 0.0)
                .ok_or(format!("bad --fault-rate: {s}")),
            None => Ok(0.0),
        }
    };
    let parse_fault_seed = || -> Result<u64, String> {
        match flag_val("--fault-seed") {
            Some(s) => s.parse().map_err(|_| format!("bad --fault-seed: {s}")),
            None => Ok(0xFA17),
        }
    };
    let parse_budget = || -> Result<Option<f64>, String> {
        match flag_val("--budget") {
            Some(s) => s
                .parse::<f64>()
                .ok()
                .filter(|b| *b >= 0.0)
                .map(Some)
                .ok_or(format!("bad --budget: {s}")),
            None => Ok(None),
        }
    };
    let parse_endpoint = || -> Result<EndpointSpec, String> {
        match (flag_val("--uds"), flag_val("--tcp")) {
            (Some(p), None) => Ok(EndpointSpec::Uds(p.to_string())),
            (None, Some(a)) => Ok(EndpointSpec::Tcp(a.to_string())),
            (Some(_), Some(_)) => Err("give --uds or --tcp, not both".into()),
            (None, None) => Err("missing endpoint: --uds PATH or --tcp ADDR".into()),
        }
    };
    let parse_count = |name: &str, default: usize| -> Result<usize, String> {
        match flag_val(name) {
            Some(s) => s
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad {name}: {s}")),
            None => Ok(default),
        }
    };
    let app_and_n = || -> Result<(String, u32), String> {
        let app = positional
            .first()
            .ok_or("missing <app> (gromacs|alya|wrf|nas-bt|nas-mg)")?
            .to_string();
        if AppKind::from_name(&app).is_none() {
            return Err(format!("unknown app '{app}'"));
        }
        let n: u32 = positional
            .get(1)
            .ok_or("missing <nprocs>")?
            .parse()
            .map_err(|_| "bad <nprocs>".to_string())?;
        Ok((app, n))
    };

    match cmd {
        "generate" => {
            let (app, nprocs) = app_and_n()?;
            Ok(Command::Generate {
                app,
                nprocs,
                seed: parse_seed()?,
                weak: has_flag("--weak"),
                output: flag_val("-o").map(str::to_string),
            })
        }
        "inspect" => Ok(Command::Inspect {
            trace: positional
                .first()
                .ok_or("missing <trace.json>")?
                .to_string(),
        }),
        "annotate" => Ok(Command::Annotate {
            trace: positional
                .first()
                .ok_or("missing <trace.json>")?
                .to_string(),
            gt_us: parse_gt()?,
            displacement: parse_disp()?,
            resilient: has_flag("--resilient"),
            budget: parse_budget()?,
            output: flag_val("-o").map(str::to_string),
        }),
        "replay" => Ok(Command::Replay {
            trace: positional
                .first()
                .ok_or("missing <trace.json>")?
                .to_string(),
            ann: flag_val("--ann").map(str::to_string),
            fault_rate: parse_fault_rate()?,
            fault_seed: parse_fault_seed()?,
            timeline: has_flag("--timeline"),
        }),
        "experiment" => {
            let (app, nprocs) = app_and_n()?;
            Ok(Command::Experiment {
                app,
                nprocs,
                gt_us: parse_gt()?,
                displacement: parse_disp()?,
                seed: parse_seed()?,
                fault_rate: parse_fault_rate()?,
                fault_seed: parse_fault_seed()?,
                resilient: has_flag("--resilient"),
                budget: parse_budget()?,
            })
        }
        "exhibits" => {
            let name = positional
                .first()
                .ok_or(
                    "missing <exhibit> \
                     (all|table1|table3|table4|fig7|fig8|fig9|fig10|generation_frontier)",
                )?
                .to_string();
            const KNOWN: [&str; 9] = [
                "all",
                "table1",
                "table3",
                "table4",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "generation_frontier",
            ];
            if !KNOWN.contains(&name.as_str()) {
                return Err(format!("unknown exhibit '{name}'"));
            }
            let jobs = match flag_val("--jobs") {
                Some(s) => s
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --jobs: {s}"))?,
                None => 0,
            };
            Ok(Command::Exhibits {
                name,
                jobs,
                serial: has_flag("--serial"),
                seed: parse_seed()?,
                out: flag_val("--out").map(str::to_string),
            })
        }
        "bench-report" => {
            let iters = match flag_val("--iters") {
                Some(s) => s
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 10)
                    .ok_or(format!("bad --iters (need >= 10): {s}"))?,
                None => 2000,
            };
            let reps = match flag_val("--reps") {
                Some(s) => s
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --reps: {s}"))?,
                None => 5,
            };
            Ok(Command::BenchReport {
                output: flag_val("-o").unwrap_or("BENCH_hotpath.json").to_string(),
                check: has_flag("--check"),
                iters,
                reps,
                label: flag_val("--label").map(str::to_string),
            })
        }
        "prv" => Ok(Command::Prv {
            trace: positional
                .first()
                .ok_or("missing <trace.json>")?
                .to_string(),
            output: flag_val("-o").map(str::to_string),
        }),
        "serve" => {
            let stats_every = match flag_val("--stats-every") {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| format!("bad --stats-every: {s}"))?,
                None => 0,
            };
            let session_limit = match flag_val("--session-limit") {
                Some(s) => Some(
                    s.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("bad --session-limit: {s}"))?,
                ),
                None => None,
            };
            let parse_ms = |name: &str, default: u64| -> Result<u64, String> {
                match flag_val(name) {
                    Some(s) => s.parse::<u64>().map_err(|_| format!("bad {name}: {s}")),
                    None => Ok(default),
                }
            };
            let max_hot_sessions = match flag_val("--max-hot-sessions") {
                Some(s) => Some(
                    s.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or(format!("bad --max-hot-sessions: {s}"))?,
                ),
                None => None,
            };
            Ok(Command::Serve {
                endpoint: parse_endpoint()?,
                workers: parse_count("--workers", 4)?,
                io_threads: parse_count("--io-threads", 2)?,
                max_hot_sessions,
                queue: parse_count("--queue", 64)?,
                stats_every,
                session_limit,
                store: flag_val("--store").map(str::to_string),
                persist_every: parse_ms("--persist-every", 256)?,
                write_queue: parse_count("--write-queue", 256)?,
                idle_timeout_ms: parse_ms("--idle-timeout-ms", 0)?,
                write_timeout_ms: parse_ms("--write-timeout-ms", 30_000)?,
                metrics_addr: flag_val("--metrics-addr").map(str::to_string),
            })
        }
        "stat" => {
            let session = match flag_val("--session") {
                Some(s) => Some(s.parse::<u32>().map_err(|_| format!("bad --session: {s}"))?),
                None => None,
            };
            Ok(Command::Stat { endpoint: parse_endpoint()?, session })
        }
        "top" => {
            let interval_ms = match flag_val("--interval-ms") {
                Some(s) => s
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --interval-ms: {s}"))?,
                None => 1_000,
            };
            Ok(Command::Top {
                endpoint: parse_endpoint()?,
                interval_ms,
                once: has_flag("--once"),
            })
        }
        "load" => {
            let (app, nprocs) = app_and_n()?;
            let split = match flag_val("--split") {
                Some(s) => Some(
                    s.parse::<f64>()
                        .ok()
                        .filter(|f| *f > 0.0 && *f < 1.0)
                        .ok_or(format!("bad --split (need 0 < F < 1): {s}"))?,
                ),
                None => None,
            };
            let chaos = match flag_val("--chaos") {
                Some(s) => Some(
                    s.parse::<f64>()
                        .ok()
                        .filter(|f| *f > 0.0 && *f <= 1.0)
                        .ok_or(format!("bad --chaos (need 0 < F <= 1): {s}"))?,
                ),
                None => None,
            };
            let chaos_seed = match flag_val("--chaos-seed") {
                Some(s) => s.parse::<u64>().map_err(|_| format!("bad --chaos-seed: {s}"))?,
                None => 0xC4A0_5EED,
            };
            let retries = match flag_val("--retries") {
                Some(s) => s
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("bad --retries (need >= 1): {s}"))?,
                None => 8,
            };
            let deadline_ms = match flag_val("--deadline-ms") {
                Some(s) => s.parse::<u64>().map_err(|_| format!("bad --deadline-ms: {s}"))?,
                None => 10_000,
            };
            // Scale-mode knobs: 0 is meaningful (mode off / unlimited),
            // so these accept any u64 rather than going through
            // parse_count.
            let drivers = match flag_val("--drivers") {
                Some(s) => s.parse::<usize>().map_err(|_| format!("bad --drivers: {s}"))?,
                None => 0,
            };
            let open_rate = match flag_val("--open-rate") {
                Some(s) => s.parse::<u64>().map_err(|_| format!("bad --open-rate: {s}"))?,
                None => 0,
            };
            let events_per_session = match flag_val("--events-per-session") {
                Some(s) => s
                    .parse::<usize>()
                    .map_err(|_| format!("bad --events-per-session: {s}"))?,
                None => 0,
            };
            Ok(Command::Load {
                app,
                nprocs,
                endpoint: parse_endpoint()?,
                sessions: parse_count("--sessions", 8)?,
                batch: parse_count("--batch", 64)?,
                seed: parse_seed()?,
                split,
                check: has_flag("--check"),
                gt_us: parse_gt()?,
                displacement: parse_disp()?,
                chaos,
                chaos_seed,
                retries,
                deadline_ms,
                drivers,
                open_rate,
                events_per_session,
                scale_curve: flag_val("--scale-curve").map(str::to_string),
                output: flag_val("-o").map(str::to_string),
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}' (try 'ibpower help')")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
ibpower — software-managed InfiniBand link power reduction (ICPP 2014 reproduction)

USAGE:
  ibpower generate <app> <nprocs> [--seed N] [--weak] [-o trace.json]
  ibpower inspect  <trace.json>
  ibpower annotate <trace.json> [--gt US] [--disp F] [--resilient] [--budget PCT]
                   [-o ann.json]
  ibpower replay   <trace.json> [--ann ann.json] [--fault-rate F] [--fault-seed N]
                   [--timeline]
  ibpower experiment <app> <nprocs> [--gt US] [--disp F] [--seed N]
                   [--fault-rate F] [--fault-seed N] [--resilient] [--budget PCT]
  ibpower prv      <trace.json> [-o out.prv]
  ibpower exhibits <name> [--jobs N] [--serial] [--seed N] [--out DIR]
  ibpower bench-report [-o PATH] [--check] [--iters N] [--reps N] [--label S]
  ibpower serve    (--uds PATH | --tcp ADDR) [--workers N] [--io-threads N]
                   [--queue N] [--stats-every N] [--session-limit N]
                   [--store DIR] [--persist-every N] [--max-hot-sessions N]
                   [--write-queue N] [--idle-timeout-ms N]
                   [--write-timeout-ms N] [--metrics-addr ADDR]
  ibpower load     <app> <nprocs> (--uds PATH | --tcp ADDR) [--sessions N]
                   [--batch N] [--seed N] [--split F] [--check] [--gt US]
                   [--disp F] [--chaos F] [--chaos-seed N] [--retries N]
                   [--deadline-ms N] [--drivers N] [--open-rate N]
                   [--events-per-session N] [--scale-curve PATH]
                   [-o report.json]
  ibpower stat     (--uds PATH | --tcp ADDR) [--session N]
  ibpower top      (--uds PATH | --tcp ADDR) [--interval-ms N] [--once]

APPS: gromacs, alya, wrf, nas-bt, nas-mg (nas-bt needs square nprocs)

EXHIBITS: all, table1, table3, table4, fig7, fig8, fig9, fig10,
  generation_frontier — run on the parallel sweep engine (traces and
  baselines memoized per key; results are byte-identical for any --jobs
  value). --jobs N sets the worker count (default: IBP_JOBS, else all
  cores); --serial forces the in-thread path; --out DIR overrides the
  results directory (default: IBP_RESULTS_DIR or results/). Each results
  JSON gets a <name>.stats.json with cache counters. generation_frontier
  sweeps the five apps across IB generations (QDR/FDR/EDR/HDR) × three
  sleep policies (wrps, deep, full depth ladder) and reports each
  point's savings, slowdown, and whole-switch saving.

FAULTS & RESILIENCE:
  --fault-rate F   inject link faults (wake misfires, flaps, 1X degrades)
                   scaled by F; 0 disables (default)
  --fault-seed N   deterministic fault stream seed (default 0xFA17)
  --resilient      enable misprediction-storm backoff + adaptive guard band
  --budget PCT     cap mechanism-added time at PCT% of nominal (implies
                   --resilient)

SERVE & LOAD: `serve` runs the online streaming prediction service — each
  connected session feeds intercepted MPI events over the CRC-checked
  length-prefixed frame protocol and gets lane directives streamed back;
  sessions may snapshot, reconnect, and restore without re-learning.
  `load` generates a workload trace and drives its ranks' event streams as
  concurrent sessions, reporting aggregate throughput and p50/p99/max
  directive latency; --check verifies the streamed directives are
  byte-identical to the offline annotate path and exits non-zero on
  mismatch; --split F exercises the snapshot/reconnect/restore path at
  fraction F of each stream; --sessions beyond <nprocs> wrap around the
  trace's ranks.

DURABILITY & CHAOS:
  --store DIR        persist session state (snapshot + directive history)
                     to DIR — atomic, CRC-checked records; on restart the
                     server rehydrates sessions and clients resume via an
                     empty-body Restore. SIGINT/SIGTERM drain gracefully,
                     flushing every live session first.
  --persist-every N  store-backed sessions also persist every N applied
                     events (default 256; 0 = only on close/drain)
  --write-queue N    outbound frames buffered per connection before the
                     oldest are shed with an in-band overload error
                     (default 256) — a client that stops reading can no
                     longer stall the worker pool
  --idle-timeout-ms / --write-timeout-ms
                     reap dead/stuck connections (defaults 0 = off, 30000)
  --chaos F          (load) wrap every connection in the seeded fault
                     injector at intensity F: partial writes, short reads,
                     stalls, resets, bit flips. The resilient client
                     reconnects with capped exponential backoff and
                     restores from the server's store (or replays from the
                     start), so --chaos --check must still end in parity.
  --chaos-seed N     deterministic fault streams (default 0xC4A05EED)
  --retries N        consecutive failed attempts before a session gives
                     up (default 8; gave-up sessions are reported in the
                     load summary, and force a --check failure)
  --deadline-ms N    per-request response deadline (default 10000)

SCALE: the serve IO layer is a readiness-driven epoll reactor — connection
  count costs a session table entry, not a thread. --io-threads N sets the
  event-loop pool (default 2). --max-hot-sessions N (with --store) caps
  in-memory session engines: least-recently-touched engines are evicted to
  the snapshot store and transparently rehydrated on their next event, so
  resident memory tracks the hot set, not the session count. On the load
  side, --drivers N multiplexes all --sessions over N connections
  (incompatible with --split/--chaos), --open-rate N paces session opens
  per second, --events-per-session N truncates each stream for a
  mostly-idle mix, and --scale-curve PATH appends a
  {sessions, events_per_sec, latency_p99_us} point to the `scaling`
  section of that benchmark JSON (e.g. BENCH_serve.json).

OBSERVABILITY: `serve --metrics-addr ADDR` exposes every server counter
  and gauge in Prometheus text format over plain HTTP (scrape any path).
  `stat` connects, sends one in-band Query frame, and prints an
  ibstat-style per-link table: power state, lane width, signalling rate,
  pattern/timing mispredictions, resilience windows, fault-injection
  rate. `top` refreshes that view every --interval-ms (default 1000);
  --once renders a single frame for scripts. Queries are answered on the
  connection reader, out of band of the session work queues, so probing
  a busy server never perturbs its streams.

BENCH-REPORT: time the hot paths (PMPI interception, PPA scan, replay,
  rank-parallel annotation, serve round trip) and append an entry to the
  trajectory JSON (default BENCH_hotpath.json). --check exits non-zero if
  intercept-path ns/call regressed more than 25% against the file's last
  entry, or the serve round trip more than 50% when the baseline entry
  records it (the CI smoke gate); --label names the entry; --iters/--reps
  set probe scale.

DEFAULTS: --seed 0xD1C0, --gt 20 (µs), --disp 0.01
";

/// Build the workload named `app` with the requested scaling mode.
pub fn workload_of(app: &str, weak: bool) -> Option<Box<dyn Workload>> {
    let kind = AppKind::from_name(app)?;
    let mode = if weak { Scaling::Weak } else { Scaling::Strong };
    Some(match kind {
        AppKind::Gromacs => Box::new(ibp_workloads::Gromacs {
            scaling: mode,
            ..Default::default()
        }),
        AppKind::Alya => Box::new(ibp_workloads::Alya {
            scaling: mode,
            ..Default::default()
        }),
        AppKind::Wrf => Box::new(ibp_workloads::Wrf {
            scaling: mode,
            ..Default::default()
        }),
        AppKind::NasBt => Box::new(ibp_workloads::NasBt {
            scaling: mode,
            ..Default::default()
        }),
        AppKind::NasMg => Box::new(ibp_workloads::NasMg {
            scaling: mode,
            ..Default::default()
        }),
    })
}

/// The `PowerConfig` for CLI parameters.
pub fn power_config(gt_us: f64, displacement: f64) -> ibp_core::PowerConfig {
    ibp_core::PowerConfig::paper(SimDuration::from_us_f64(gt_us), displacement)
}

/// [`power_config`] plus the CLI's resilience knobs: `--budget PCT`
/// overrides the standard slowdown budget and implies `--resilient`.
pub fn power_config_resilient(
    gt_us: f64,
    displacement: f64,
    resilient: bool,
    budget: Option<f64>,
) -> ibp_core::PowerConfig {
    let cfg = power_config(gt_us, displacement);
    match (resilient, budget) {
        (_, Some(pct)) => cfg.with_resilience(ibp_core::ResilienceConfig::with_budget(pct)),
        (true, None) => cfg.with_resilience(ibp_core::ResilienceConfig::standard()),
        (false, None) => cfg,
    }
}

/// The CLI's `FaultConfig` for `--fault-rate` / `--fault-seed`: `None`
/// when the rate is zero (fault-free replay).
pub fn fault_config(fault_rate: f64, fault_seed: u64) -> Option<ibp_network::FaultConfig> {
    (fault_rate > 0.0).then(|| ibp_network::FaultConfig::with_rate(fault_seed, fault_rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_generate() {
        let c = parse(&argv("generate alya 8 --seed 7 -o t.json")).unwrap();
        assert_eq!(
            c,
            Command::Generate {
                app: "alya".into(),
                nprocs: 8,
                seed: 7,
                weak: false,
                output: Some("t.json".into()),
            }
        );
    }

    #[test]
    fn parses_weak_flag() {
        let c = parse(&argv("generate nas-bt 16 --weak")).unwrap();
        match c {
            Command::Generate { weak, seed, .. } => {
                assert!(weak);
                assert_eq!(seed, 0xD1C0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_app() {
        assert!(parse(&argv("generate lammps 8")).unwrap_err().contains("unknown app"));
    }

    #[test]
    fn parses_annotate_with_defaults() {
        let c = parse(&argv("annotate t.json")).unwrap();
        assert_eq!(
            c,
            Command::Annotate {
                trace: "t.json".into(),
                gt_us: 20.0,
                displacement: 0.01,
                resilient: false,
                budget: None,
                output: None,
            }
        );
    }

    #[test]
    fn parses_replay_with_ann() {
        let c = parse(&argv("replay t.json --ann a.json --timeline")).unwrap();
        assert_eq!(
            c,
            Command::Replay {
                trace: "t.json".into(),
                ann: Some("a.json".into()),
                fault_rate: 0.0,
                fault_seed: 0xFA17,
                timeline: true,
            }
        );
    }

    #[test]
    fn parses_experiment() {
        let c = parse(&argv("experiment wrf 32 --gt 36 --disp 0.05")).unwrap();
        assert_eq!(
            c,
            Command::Experiment {
                app: "wrf".into(),
                nprocs: 32,
                gt_us: 36.0,
                displacement: 0.05,
                seed: 0xD1C0,
                fault_rate: 0.0,
                fault_seed: 0xFA17,
                resilient: false,
                budget: None,
            }
        );
    }

    #[test]
    fn parses_fault_flags() {
        let c = parse(&argv("replay t.json --fault-rate 10 --fault-seed 42")).unwrap();
        match c {
            Command::Replay {
                fault_rate,
                fault_seed,
                ..
            } => {
                assert_eq!(fault_rate, 10.0);
                assert_eq!(fault_seed, 42);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("replay t.json --fault-rate -1"))
            .unwrap_err()
            .contains("bad --fault-rate"));
    }

    #[test]
    fn parses_resilience_flags() {
        let c = parse(&argv("annotate t.json --resilient --budget 1.5")).unwrap();
        match c {
            Command::Annotate {
                resilient, budget, ..
            } => {
                assert!(resilient);
                assert_eq!(budget, Some(1.5));
            }
            other => panic!("{other:?}"),
        }
        // Value flags must not leak into positionals: trace is still found.
        let c = parse(&argv("experiment alya 8 --fault-rate 5 --resilient")).unwrap();
        match c {
            Command::Experiment {
                app,
                nprocs,
                fault_rate,
                resilient,
                ..
            } => {
                assert_eq!(app, "alya");
                assert_eq!(nprocs, 8);
                assert_eq!(fault_rate, 5.0);
                assert!(resilient);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resilient_config_wiring() {
        assert!(!power_config_resilient(20.0, 0.01, false, None).resilience.enabled);
        assert!(power_config_resilient(20.0, 0.01, true, None).resilience.enabled);
        let c = power_config_resilient(20.0, 0.01, false, Some(3.0));
        assert!(c.resilience.enabled, "--budget implies --resilient");
        assert_eq!(c.resilience.slowdown_budget_pct, 3.0);
        assert!(fault_config(0.0, 7).is_none());
        let f = fault_config(2.0, 7).expect("rate > 0 builds a config");
        assert_eq!(f.seed, 7);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn parses_exhibits() {
        let c = parse(&argv("exhibits table3 --jobs 4 --seed 9 --out tmp/r")).unwrap();
        assert_eq!(
            c,
            Command::Exhibits {
                name: "table3".into(),
                jobs: 4,
                serial: false,
                seed: 9,
                out: Some("tmp/r".into()),
            }
        );
        match parse(&argv("exhibits generation_frontier --jobs 2")).unwrap() {
            Command::Exhibits { name, jobs, .. } => {
                assert_eq!(name, "generation_frontier");
                assert_eq!(jobs, 2);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&argv("exhibits all --serial")).unwrap();
        match c {
            Command::Exhibits {
                name, jobs, serial, ..
            } => {
                assert_eq!(name, "all");
                assert_eq!(jobs, 0);
                assert!(serial);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exhibits_rejects_bad_input() {
        assert!(parse(&argv("exhibits")).is_err());
        assert!(parse(&argv("exhibits fig11"))
            .unwrap_err()
            .contains("unknown exhibit"));
        assert!(parse(&argv("exhibits all --jobs 0"))
            .unwrap_err()
            .contains("bad --jobs"));
    }

    #[test]
    fn parses_bench_report() {
        let c = parse(&argv("bench-report")).unwrap();
        assert_eq!(
            c,
            Command::BenchReport {
                output: "BENCH_hotpath.json".into(),
                check: false,
                iters: 2000,
                reps: 5,
                label: None,
            }
        );
        let c = parse(&argv("bench-report -o t.json --check --iters 500 --reps 3 --label pr"))
            .unwrap();
        assert_eq!(
            c,
            Command::BenchReport {
                output: "t.json".into(),
                check: true,
                iters: 500,
                reps: 3,
                label: Some("pr".into()),
            }
        );
        assert!(parse(&argv("bench-report --iters 2"))
            .unwrap_err()
            .contains("bad --iters"));
        assert!(parse(&argv("bench-report --reps 0"))
            .unwrap_err()
            .contains("bad --reps"));
    }

    #[test]
    fn parses_serve() {
        let c = parse(&argv("serve --uds /tmp/ibp.sock")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                endpoint: EndpointSpec::Uds("/tmp/ibp.sock".into()),
                workers: 4,
                io_threads: 2,
                max_hot_sessions: None,
                queue: 64,
                stats_every: 0,
                session_limit: None,
                store: None,
                persist_every: 256,
                write_queue: 256,
                idle_timeout_ms: 0,
                write_timeout_ms: 30_000,
                metrics_addr: None,
            }
        );
        let c = parse(&argv(
            "serve --tcp 127.0.0.1:9400 --workers 2 --queue 16 --stats-every 500 --session-limit 8",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                endpoint: EndpointSpec::Tcp("127.0.0.1:9400".into()),
                workers: 2,
                io_threads: 2,
                max_hot_sessions: None,
                queue: 16,
                stats_every: 500,
                session_limit: Some(8),
                store: None,
                persist_every: 256,
                write_queue: 256,
                idle_timeout_ms: 0,
                write_timeout_ms: 30_000,
                metrics_addr: None,
            }
        );
    }

    #[test]
    fn parses_serve_scale_flags() {
        let c = parse(&argv(
            "serve --uds a.sock --io-threads 4 --max-hot-sessions 1000 --store /var/ibp",
        ))
        .unwrap();
        match c {
            Command::Serve { io_threads, max_hot_sessions, store, .. } => {
                assert_eq!(io_threads, 4);
                assert_eq!(max_hot_sessions, Some(1_000));
                assert_eq!(store.as_deref(), Some("/var/ibp"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --uds a.sock --io-threads 0"))
            .unwrap_err()
            .contains("bad --io-threads"));
        assert!(parse(&argv("serve --uds a.sock --max-hot-sessions 0"))
            .unwrap_err()
            .contains("bad --max-hot-sessions"));
    }

    #[test]
    fn parses_serve_metrics_addr() {
        let c = parse(&argv("serve --uds a.sock --metrics-addr 127.0.0.1:9401")).unwrap();
        match c {
            Command::Serve { metrics_addr, .. } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:9401"));
            }
            other => panic!("{other:?}"),
        }
        // --metrics-addr takes a value: it must not leak into positionals.
        assert!(parse(&argv("serve --metrics-addr 127.0.0.1:9401 --uds a.sock")).is_ok());
    }

    #[test]
    fn parses_stat_and_top() {
        let c = parse(&argv("stat --tcp 127.0.0.1:9400")).unwrap();
        assert_eq!(
            c,
            Command::Stat {
                endpoint: EndpointSpec::Tcp("127.0.0.1:9400".into()),
                session: None,
            }
        );
        let c = parse(&argv("stat --uds a.sock --session 3")).unwrap();
        assert_eq!(
            c,
            Command::Stat {
                endpoint: EndpointSpec::Uds("a.sock".into()),
                session: Some(3),
            }
        );
        let c = parse(&argv("top --uds a.sock")).unwrap();
        assert_eq!(
            c,
            Command::Top {
                endpoint: EndpointSpec::Uds("a.sock".into()),
                interval_ms: 1_000,
                once: false,
            }
        );
        let c = parse(&argv("top --tcp [::1]:9400 --interval-ms 250 --once")).unwrap();
        assert_eq!(
            c,
            Command::Top {
                endpoint: EndpointSpec::Tcp("[::1]:9400".into()),
                interval_ms: 250,
                once: true,
            }
        );
        assert!(parse(&argv("stat")).unwrap_err().contains("missing endpoint"));
        assert!(parse(&argv("stat --uds a.sock --session x"))
            .unwrap_err()
            .contains("bad --session"));
        assert!(parse(&argv("top --uds a.sock --interval-ms 0"))
            .unwrap_err()
            .contains("bad --interval-ms"));
    }

    #[test]
    fn parses_serve_durability_flags() {
        let c = parse(&argv(
            "serve --uds /tmp/ibp.sock --store /var/ibp --persist-every 64 \
             --write-queue 32 --idle-timeout-ms 5000 --write-timeout-ms 1000",
        ))
        .unwrap();
        match c {
            Command::Serve {
                store,
                persist_every,
                write_queue,
                idle_timeout_ms,
                write_timeout_ms,
                ..
            } => {
                assert_eq!(store.as_deref(), Some("/var/ibp"));
                assert_eq!(persist_every, 64);
                assert_eq!(write_queue, 32);
                assert_eq!(idle_timeout_ms, 5_000);
                assert_eq!(write_timeout_ms, 1_000);
            }
            other => panic!("{other:?}"),
        }
        // --store takes a value: it must not swallow a later flag, and
        // its argument must not leak into the positional list.
        assert!(parse(&argv("serve --store d --uds a.sock")).is_ok());
        assert!(parse(&argv("serve --uds a.sock --write-queue 0"))
            .unwrap_err()
            .contains("bad --write-queue"));
        assert!(parse(&argv("serve --uds a.sock --persist-every x"))
            .unwrap_err()
            .contains("bad --persist-every"));
    }

    #[test]
    fn serve_rejects_bad_endpoints() {
        assert!(parse(&argv("serve"))
            .unwrap_err()
            .contains("missing endpoint"));
        assert!(parse(&argv("serve --uds a.sock --tcp 1.2.3.4:5"))
            .unwrap_err()
            .contains("not both"));
        assert!(parse(&argv("serve --uds a.sock --workers 0"))
            .unwrap_err()
            .contains("bad --workers"));
        assert!(parse(&argv("serve --uds a.sock --session-limit 0"))
            .unwrap_err()
            .contains("bad --session-limit"));
    }

    #[test]
    fn parses_load() {
        let c = parse(&argv("load alya 8 --uds /tmp/ibp.sock")).unwrap();
        assert_eq!(
            c,
            Command::Load {
                app: "alya".into(),
                nprocs: 8,
                endpoint: EndpointSpec::Uds("/tmp/ibp.sock".into()),
                sessions: 8,
                batch: 64,
                seed: 0xD1C0,
                split: None,
                check: false,
                gt_us: 20.0,
                displacement: 0.01,
                chaos: None,
                chaos_seed: 0xC4A0_5EED,
                retries: 8,
                deadline_ms: 10_000,
                drivers: 0,
                open_rate: 0,
                events_per_session: 0,
                scale_curve: None,
                output: None,
            }
        );
        let c = parse(&argv(
            "load wrf 32 --tcp [::1]:9400 --sessions 16 --batch 128 --seed 3 \
             --split 0.5 --check --gt 36 --disp 0.05 -o rep.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Load {
                app: "wrf".into(),
                nprocs: 32,
                endpoint: EndpointSpec::Tcp("[::1]:9400".into()),
                sessions: 16,
                batch: 128,
                seed: 3,
                split: Some(0.5),
                check: true,
                gt_us: 36.0,
                displacement: 0.05,
                chaos: None,
                chaos_seed: 0xC4A0_5EED,
                retries: 8,
                deadline_ms: 10_000,
                drivers: 0,
                open_rate: 0,
                events_per_session: 0,
                scale_curve: None,
                output: Some("rep.json".into()),
            }
        );
    }

    #[test]
    fn parses_load_scale_flags() {
        let c = parse(&argv(
            "load alya 8 --uds a.sock --sessions 10000 --drivers 16 --open-rate 2000 \
             --events-per-session 96 --scale-curve BENCH_serve.json",
        ))
        .unwrap();
        match c {
            Command::Load { sessions, drivers, open_rate, events_per_session, scale_curve, .. } => {
                assert_eq!(sessions, 10_000);
                assert_eq!(drivers, 16);
                assert_eq!(open_rate, 2_000);
                assert_eq!(events_per_session, 96);
                assert_eq!(scale_curve.as_deref(), Some("BENCH_serve.json"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("load alya 8 --uds a.sock --drivers x"))
            .unwrap_err()
            .contains("bad --drivers"));
        assert!(parse(&argv("load alya 8 --uds a.sock --open-rate x"))
            .unwrap_err()
            .contains("bad --open-rate"));
    }

    #[test]
    fn parses_load_chaos_flags() {
        let c = parse(&argv(
            "load alya 8 --uds a.sock --chaos 0.3 --chaos-seed 7 --retries 3 --deadline-ms 500",
        ))
        .unwrap();
        match c {
            Command::Load { chaos, chaos_seed, retries, deadline_ms, .. } => {
                assert_eq!(chaos, Some(0.3));
                assert_eq!(chaos_seed, 7);
                assert_eq!(retries, 3);
                assert_eq!(deadline_ms, 500);
            }
            other => panic!("{other:?}"),
        }
        for bad in ["0", "1.5", "-0.1", "nan"] {
            assert!(
                parse(&argv(&format!("load alya 8 --uds a.sock --chaos {bad}")))
                    .unwrap_err()
                    .contains("bad --chaos"),
                "--chaos {bad} should be rejected"
            );
        }
        assert!(parse(&argv("load alya 8 --uds a.sock --retries 0"))
            .unwrap_err()
            .contains("bad --retries"));
    }

    #[test]
    fn load_rejects_bad_input() {
        // Endpoint flags must not swallow positionals: app/nprocs parse.
        assert!(parse(&argv("load --uds a.sock alya 8")).is_ok());
        assert!(parse(&argv("load alya 8")).unwrap_err().contains("missing endpoint"));
        assert!(parse(&argv("load lammps 8 --uds a.sock"))
            .unwrap_err()
            .contains("unknown app"));
        for bad in ["0", "1", "-0.5", "nan"] {
            assert!(
                parse(&argv(&format!("load alya 8 --uds a.sock --split {bad}")))
                    .unwrap_err()
                    .contains("bad --split"),
                "--split {bad} should be rejected"
            );
        }
        assert!(parse(&argv("load alya 8 --uds a.sock --sessions 0"))
            .unwrap_err()
            .contains("bad --sessions"));
    }

    #[test]
    fn endpoint_spec_converts() {
        let e = EndpointSpec::Uds("/tmp/x.sock".into()).to_endpoint();
        assert!(matches!(e, ibp_serve::Endpoint::Unix(_)));
        let e = EndpointSpec::Tcp("127.0.0.1:1".into()).to_endpoint();
        assert!(matches!(e, ibp_serve::Endpoint::Tcp(_)));
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&argv(h)).unwrap(), Command::Help);
        }
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn missing_positionals_error() {
        assert!(parse(&argv("generate")).is_err());
        assert!(parse(&argv("generate alya")).is_err());
        assert!(parse(&argv("inspect")).is_err());
    }

    #[test]
    fn workload_construction() {
        assert!(workload_of("alya", false).is_some());
        assert!(workload_of("alya", true).is_some());
        assert!(workload_of("nonesuch", false).is_none());
        assert_eq!(workload_of("wrf", false).unwrap().name(), "wrf");
    }
}
