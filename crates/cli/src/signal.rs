//! Graceful-drain signal handling for `ibpower serve`.
//!
//! The server exposes a stop flag; flipping it makes `run()` stop
//! accepting, quiesce in-flight work, and persist every store-backed
//! session before returning. Wiring SIGINT/SIGTERM to that flag needs
//! `signal(2)`, which `std` does not expose — a three-line FFI
//! declaration against the libc every Unix binary already links keeps
//! the workspace free of new dependencies. This is the only unsafe
//! code in the binary; the handler body is a single atomic store,
//! which is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn raise_stop(_signum: i32) {
    if let Some(flag) = STOP.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Install SIGINT and SIGTERM handlers that raise `flag`. Installing
/// twice keeps the first flag (the handlers are process-global).
pub fn drain_on_signals(flag: Arc<AtomicBool>) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = STOP.set(flag);
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = raise_stop as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}
