//! Graceful-drain signal handling for `ibpower serve`.
//!
//! The server exposes a stop flag; flipping it makes `run()` stop
//! accepting, quiesce in-flight work, and persist every store-backed
//! session before returning. Wiring SIGINT/SIGTERM to that flag needs
//! `signal(2)`, which `std` does not expose — a three-line FFI
//! declaration against the libc every Unix binary already links keeps
//! the workspace free of new dependencies. This is the only unsafe
//! code in the binary.
//!
//! The reactor sleeps in `epoll_wait`, so the flag alone would only be
//! observed at the next timeout tick. The handler therefore also pokes
//! the server's eventfd waker ([`epoll::notify_raw`]) so the event
//! loop wakes immediately and begins the drain. Both operations — an
//! atomic store and a `write(2)` on an eventfd — are async-signal-safe.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::{Arc, OnceLock};

static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn raise_stop(_signum: i32) {
    if let Some(flag) = STOP.get() {
        flag.store(true, Ordering::Relaxed);
    }
    let fd = WAKE_FD.load(Ordering::Relaxed);
    if fd >= 0 {
        epoll::notify_raw(fd);
    }
}

/// Install SIGINT and SIGTERM handlers that raise `flag` and poke the
/// reactor's shutdown eventfd `wake_fd` so the drain starts without
/// waiting for the next poll timeout. Installing twice keeps the first
/// flag (the handlers are process-global).
pub fn drain_on_signals(flag: Arc<AtomicBool>, wake_fd: std::os::fd::RawFd) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = STOP.set(flag);
    WAKE_FD.store(wake_fd, Ordering::Relaxed);
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = raise_stop as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}
