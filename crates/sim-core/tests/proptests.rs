//! Property-based tests for the simulation substrate.

use ibp_simcore::{DetRng, EventQueue, Histogram, OnlineStats, SimDuration, SimTime, StateTimeline};
use proptest::prelude::*;

proptest! {
    /// Popping the queue always yields events in non-decreasing time order,
    /// and same-time events come out in insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(s) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(s.time >= lt);
                if s.time == lt {
                    prop_assert!(s.event > lseq, "FIFO violated among ties");
                }
            }
            last = Some((s.time, s.event));
        }
    }

    /// Welford accumulation matches the naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(data in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = OnlineStats::new();
        data.iter().for_each(|&x| s.push(x));
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), data.len() as u64);
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn online_stats_merge_is_concat(
        a in proptest::collection::vec(-1e3f64..1e3, 0..100),
        b in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut sa = OnlineStats::new();
        a.iter().for_each(|&x| sa.push(x));
        let mut sb = OnlineStats::new();
        b.iter().for_each(|&x| sb.push(x));
        sa.merge(&sb);

        let mut sc = OnlineStats::new();
        a.iter().chain(b.iter()).for_each(|&x| sc.push(x));

        prop_assert_eq!(sa.count(), sc.count());
        prop_assert!((sa.mean() - sc.mean()).abs() < 1e-9 * (1.0 + sc.mean().abs()));
        prop_assert!((sa.variance() - sc.variance()).abs() < 1e-7 * (1.0 + sc.variance()));
    }

    /// Histogram bucket fractions sum to 1 and every value lands in the
    /// bucket whose range contains it.
    #[test]
    fn histogram_partitions_input(values in proptest::collection::vec(0f64..1e4, 1..300)) {
        let edges = vec![20.0, 200.0, 1000.0];
        let mut h = Histogram::new(edges.clone());
        values.iter().for_each(|&v| h.push(v));

        prop_assert_eq!(h.total_count(), values.len() as u64);
        let frac_sum: f64 = (0..h.buckets()).map(|i| h.count_fraction(i)).sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-12);

        for &v in &values {
            let b = h.bucket_of(v);
            let lo = if b == 0 { f64::NEG_INFINITY } else { edges[b - 1] };
            let hi = if b == edges.len() { f64::INFINITY } else { edges[b] };
            prop_assert!(v >= lo && v < hi, "{v} not in bucket {b} [{lo}, {hi})");
        }
    }

    /// A timeline built from arbitrary transition deltas tiles [0, end)
    /// exactly: interval durations sum to the horizon.
    #[test]
    fn timeline_tiles_time(
        deltas in proptest::collection::vec(1u64..10_000, 0..100),
        states in proptest::collection::vec(0u8..4, 0..100),
        tail in 1u64..10_000,
    ) {
        let mut tl = StateTimeline::new(0u8);
        let mut t = SimTime::ZERO;
        for (d, s) in deltas.iter().zip(states.iter()) {
            t += SimDuration::from_ns(*d);
            tl.record(t, *s);
        }
        let end = t + SimDuration::from_ns(tail);
        let total: SimDuration = tl.intervals(end).map(|iv| iv.duration()).sum();
        prop_assert_eq!(total, end.since(SimTime::ZERO));

        // time_in over all states also covers everything.
        let all = tl.time_in(end, |_| true);
        prop_assert_eq!(all, end.since(SimTime::ZERO));

        // integrate with constant 1.0 gives the horizon in seconds.
        let x = tl.integrate(end, |_| 1.0);
        prop_assert!((x - end.as_secs_f64()).abs() < 1e-12);
    }

    /// Split RNG streams are reproducible: same root seed + label always
    /// gives the same draws.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), label in any::<u64>()) {
        let mut a = DetRng::seed_from_u64(seed).split(label);
        let mut b = DetRng::seed_from_u64(seed).split(label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Lognormal jitter is always strictly positive.
    #[test]
    fn lognormal_jitter_positive(seed in any::<u64>(), sigma in 0.0f64..2.0) {
        let mut r = DetRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(r.lognormal_jitter(sigma) > 0.0);
        }
    }
}
