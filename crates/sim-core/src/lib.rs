//! # ibp-simcore — simulation substrate
//!
//! Foundation crate for the `ibpower` workspace, the Rust reproduction of
//! *Dickov et al., "Software-Managed Power Reduction in Infiniband Links"*
//! (ICPP 2014). It provides the primitives every layer above builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time;
//! * [`EventQueue`] — a deterministic discrete-event priority queue
//!   (FIFO among same-instant events);
//! * [`DetRng`] — seeded, splittable randomness with the distributions the
//!   workload models need;
//! * [`OnlineStats`] / [`Histogram`] — aggregation helpers used by the
//!   evaluation pipeline (Table I bucketing, figure averages);
//! * [`StateTimeline`] — state-transition records with time integration,
//!   the basis of all power/energy accounting.
//!
//! Everything here is deterministic by construction: no wall-clock access,
//! no unseeded randomness, no iteration over unordered containers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;

pub use queue::{EventQueue, Scheduled};
pub use rng::DetRng;
pub use stats::{percentile, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use timeline::{StateInterval, StateTimeline};
