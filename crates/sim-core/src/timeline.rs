//! State timelines with time integration.
//!
//! A [`StateTimeline`] records when a component (a link, a lane group, a
//! switch port) changes state, and can afterwards answer "how long was it
//! in state S?" and "what is the time-weighted average of f(state)?".
//! Link power accounting is exactly that second question with
//! `f = power draw of the state`.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One maximal interval during which the state was constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateInterval<S> {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// The state held throughout the interval.
    pub state: S,
}

impl<S> StateInterval<S> {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// An append-only record of state transitions over simulated time.
///
/// Transitions must be recorded in non-decreasing time order. Recording the
/// same state again is a no-op (intervals stay maximal); recording a new
/// state at the exact time of the previous transition *replaces* it (the
/// zero-length interval is dropped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateTimeline<S> {
    /// (transition time, new state) pairs, strictly increasing in time.
    transitions: Vec<(SimTime, S)>,
}

impl<S: Copy + PartialEq> StateTimeline<S> {
    /// Start a timeline in `initial` state at time zero.
    pub fn new(initial: S) -> Self {
        StateTimeline {
            transitions: vec![(SimTime::ZERO, initial)],
        }
    }

    /// Record that the state becomes `state` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded transition.
    pub fn record(&mut self, t: SimTime, state: S) {
        let (last_t, last_s) = *self.transitions.last().expect("timeline never empty");
        assert!(
            t >= last_t,
            "StateTimeline::record: time went backwards"
        );
        if state == last_s {
            return;
        }
        if t == last_t {
            // Replace the zero-length interval.
            self.transitions.last_mut().expect("non-empty").1 = state;
            // Collapse with predecessor if this made it redundant.
            let n = self.transitions.len();
            if n >= 2 && self.transitions[n - 2].1 == state {
                self.transitions.pop();
            }
            return;
        }
        self.transitions.push((t, state));
    }

    /// The state currently in effect (after the last transition).
    pub fn current(&self) -> S {
        self.transitions.last().expect("timeline never empty").1
    }

    /// The time of the last recorded transition.
    pub fn last_transition(&self) -> SimTime {
        self.transitions.last().expect("timeline never empty").0
    }

    /// Number of recorded transitions (including the initial state).
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Iterate over maximal constant-state intervals, closing the final
    /// interval at `end`.
    ///
    /// # Panics
    /// Panics if `end` precedes the last transition.
    pub fn intervals(&self, end: SimTime) -> impl Iterator<Item = StateInterval<S>> + '_ {
        assert!(end >= self.last_transition(), "timeline end before last transition");
        let n = self.transitions.len();
        (0..n).filter_map(move |i| {
            let (start, state) = self.transitions[i];
            let stop = if i + 1 < n { self.transitions[i + 1].0 } else { end };
            (stop > start).then_some(StateInterval {
                start,
                end: stop,
                state,
            })
        })
    }

    /// Total time spent in states satisfying `pred`, up to `end`.
    pub fn time_in(&self, end: SimTime, mut pred: impl FnMut(S) -> bool) -> SimDuration {
        self.intervals(end)
            .filter(|iv| pred(iv.state))
            .map(|iv| iv.duration())
            .sum()
    }

    /// Time-weighted integral of `value(state)` over `[0, end)`, in
    /// value-seconds. With `value` = power in watts this is energy in
    /// joules.
    pub fn integrate(&self, end: SimTime, mut value: impl FnMut(S) -> f64) -> f64 {
        self.intervals(end)
            .map(|iv| value(iv.state) * iv.duration().as_secs_f64())
            .sum()
    }

    /// Time-weighted mean of `value(state)` over `[0, end)`.
    ///
    /// Returns 0 for a zero-length timeline.
    pub fn time_average(&self, end: SimTime, value: impl FnMut(S) -> f64) -> f64 {
        let total = end.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.integrate(end, value) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Mode {
        Full,
        Low,
    }

    #[test]
    fn records_and_integrates() {
        let mut tl = StateTimeline::new(Mode::Full);
        tl.record(SimTime::from_us(10), Mode::Low);
        tl.record(SimTime::from_us(30), Mode::Full);
        let end = SimTime::from_us(40);

        let low = tl.time_in(end, |s| s == Mode::Low);
        assert_eq!(low, SimDuration::from_us(20));

        // Power: Full = 1.0, Low = 0.43 (the WRPS ratio).
        let avg = tl.time_average(end, |s| match s {
            Mode::Full => 1.0,
            Mode::Low => 0.43,
        });
        let expect = (10.0 * 1.0 + 20.0 * 0.43 + 10.0 * 1.0) / 40.0;
        assert!((avg - expect).abs() < 1e-12, "{avg} vs {expect}");
    }

    #[test]
    fn duplicate_state_is_noop() {
        let mut tl = StateTimeline::new(Mode::Full);
        tl.record(SimTime::from_us(5), Mode::Full);
        tl.record(SimTime::from_us(9), Mode::Full);
        assert_eq!(tl.transition_count(), 1);
    }

    #[test]
    fn same_time_transition_replaces() {
        let mut tl = StateTimeline::new(Mode::Full);
        tl.record(SimTime::from_us(10), Mode::Low);
        tl.record(SimTime::from_us(10), Mode::Full); // collapses back
        assert_eq!(tl.transition_count(), 1);
        assert_eq!(tl.current(), Mode::Full);

        tl.record(SimTime::from_us(20), Mode::Low);
        let ivs: Vec<_> = tl.intervals(SimTime::from_us(30)).collect();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].state, Mode::Full);
        assert_eq!(ivs[0].duration(), SimDuration::from_us(20));
    }

    #[test]
    fn intervals_cover_whole_range_without_gaps() {
        let mut tl = StateTimeline::new(0u8);
        for i in 1..=5 {
            tl.record(SimTime::from_us(i * 7), i as u8);
        }
        let end = SimTime::from_us(100);
        let ivs: Vec<_> = tl.intervals(end).collect();
        assert_eq!(ivs.first().unwrap().start, SimTime::ZERO);
        assert_eq!(ivs.last().unwrap().end, end);
        for w in ivs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "no gaps, no overlaps");
        }
        let total: SimDuration = ivs.iter().map(|iv| iv.duration()).sum();
        assert_eq!(total, SimDuration::from_us(100));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_going_backwards_panics() {
        let mut tl = StateTimeline::new(0u8);
        tl.record(SimTime::from_us(10), 1);
        tl.record(SimTime::from_us(5), 2);
    }

    #[test]
    fn zero_length_timeline_average_is_zero() {
        let tl = StateTimeline::new(1u8);
        assert_eq!(tl.time_average(SimTime::ZERO, |_| 100.0), 0.0);
    }
}
