//! Deterministic random number generation for simulations.
//!
//! Every stochastic component in the workspace (workload jitter, random
//! routing, failure injection) draws from a [`DetRng`] seeded explicitly.
//! `DetRng` wraps a counter-free, platform-independent generator
//! ([`rand::rngs::StdRng`], ChaCha-based) and adds the distributions the
//! workload models need: uniform ranges, normal and lognormal jitter, and
//! stream splitting so independent subsystems can derive uncorrelated
//! generators from one experiment seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, splittable random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent generator for a named sub-stream.
    ///
    /// Mixing the label into the seed (SplitMix64 finalizer) gives streams
    /// that are uncorrelated in practice and — crucially — *stable*: adding
    /// a new consumer of randomness does not perturb existing streams.
    pub fn split(&self, label: u64) -> DetRng {
        // SplitMix64 finalizer over (fresh draw ^ label).
        let mut z = self
            .inner
            .clone()
            .gen::<u64>()
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            ^ label.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::seed_from_u64(z)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second value is discarded to keep the call stateless).
    pub fn normal_std(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal_std()
    }

    /// Lognormal multiplicative jitter with median 1 and the given sigma
    /// (log-space standard deviation). `sigma = 0` returns exactly 1.
    ///
    /// This is the jitter model for compute-phase durations: real
    /// iteration times are right-skewed — occasionally much longer, never
    /// negative — which a lognormal captures and a normal does not.
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        (sigma * self.normal_std()).exp()
    }

    /// Raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_stable_and_distinct() {
        let root = DetRng::seed_from_u64(7);
        let mut s1a = root.split(1);
        let mut s1b = root.split(1);
        let mut s2 = root.split(2);
        let x = s1a.next_u64();
        assert_eq!(x, s1b.next_u64(), "same label must give same stream");
        assert_ne!(x, s2.next_u64(), "different labels must differ");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_range(5.0, 6.0);
            assert!((5.0..6.0).contains(&v));
        }
    }

    #[test]
    fn index_in_bounds() {
        let mut r = DetRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices should be reachable");
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = DetRng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn lognormal_jitter_median_near_one() {
        let mut r = DetRng::seed_from_u64(6);
        let mut draws: Vec<f64> = (0..10_001).map(|_| r.lognormal_jitter(0.3)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[draws.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_jitter_zero_sigma_is_identity() {
        let mut r = DetRng::seed_from_u64(7);
        assert_eq!(r.lognormal_jitter(0.0), 1.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(8);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0 + f64::EPSILON)));
    }
}
