//! Simulation time primitives.
//!
//! All simulated time is kept in integer **nanoseconds** (`u64`). The paper's
//! quantities of interest span roughly six orders of magnitude — 1 µs MPI
//! latencies up to multi-second application runs — and integer nanoseconds
//! cover that range exactly, with no floating-point drift in event ordering.
//!
//! Two newtypes are provided:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! Arithmetic is checked in debug builds (overflowing a `u64` nanosecond
//! counter means a simulation bug, not a value to propagate silently).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulated run.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from an earlier instant to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self` (a causality violation in the simulator).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: causality violation ({} < {})",
            self,
            earlier
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "unbounded" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us}");
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float factor, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite factors.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The shorter of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulated run exceeds ~584 years"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: instant before simulation start"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime(")?;
        fmt_ns(self.0, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration(")?;
        fmt_ns(self.0, f)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(20).as_ns(), 20_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert_eq!(SimDuration::from_us_f64(0.5).as_ns(), 500);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_us(4));
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime::from_us(1).since(SimTime::from_us(2));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_ns(10);
        assert_eq!(d.mul_f64(0.25).as_ns(), 3); // 2.5 rounds to 3 (round-half-up)
        assert_eq!(d.mul_f64(1.5).as_ns(), 15);
        assert_eq!(d.mul_f64(0.0).as_ns(), 0);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total, SimDuration::from_us(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_us(1);
        let b = SimDuration::from_us(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::from_us(1).max(SimTime::from_us(2)), SimTime::from_us(2));
    }
}
