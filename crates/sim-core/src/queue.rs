//! Deterministic discrete-event queue.
//!
//! A thin wrapper around a binary heap that orders events by
//! `(time, sequence-number)`. The sequence number makes extraction order
//! *total* and *deterministic*: two events scheduled for the same instant
//! pop in the order they were pushed, regardless of heap internals. Every
//! simulator in this workspace is required to be bit-for-bit reproducible
//! given a seed, and that property rests on this queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event payload scheduled at a simulated instant.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// The instant at which the event fires.
    pub time: SimTime,
    /// Insertion sequence; ties on `time` pop in insertion order.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of simulation events.
///
/// # Example
/// ```
/// use ibp_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(5), "b");
/// q.push(SimTime::from_us(1), "a");
/// q.push(SimTime::from_us(5), "c");
/// assert_eq!(q.pop().unwrap().event, "a");
/// assert_eq!(q.pop().unwrap().event, "b"); // same-time ties pop FIFO
/// assert_eq!(q.pop().unwrap().event, "c");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Returns the sequence number
    /// assigned to the event.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        seq
    }

    /// Remove and return the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(50), ());
        q.push(SimTime::from_ns(20), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(20)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(50)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1u8);
        q.push(SimTime::ZERO, 2u8);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_deterministic() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(10), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        q.push(SimTime::from_ns(10), "c");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
    }
}
