//! Online statistics and histograms.
//!
//! The evaluation pipeline aggregates per-rank and per-link quantities
//! (idle-interval lengths, power savings, slowdown percentages). These
//! helpers keep that aggregation allocation-light and numerically stable.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A histogram over explicit, caller-supplied bucket boundaries.
///
/// Bucket `i` covers `[edges[i-1], edges[i])`, with an implicit underflow
/// bucket `(-inf, edges[0])` at index 0 and an overflow bucket
/// `[edges.last(), +inf)` at the end — the same bucketing scheme as the
/// paper's Table I (`<20 µs`, `20–200 µs`, `>200 µs` with edges 20 and 200).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    /// Sum of observed values per bucket (lets callers report "% of total
    /// time" as well as "% of intervals").
    sums: Vec<f64>,
}

impl Histogram {
    /// Create a histogram with the given strictly increasing bucket edges.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let buckets = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; buckets],
            sums: vec![0.0; buckets],
        }
    }

    /// Index of the bucket containing `x`.
    pub fn bucket_of(&self, x: f64) -> usize {
        // partition_point returns the count of edges <= x, which is exactly
        // the bucket index under our [lo, hi) convention.
        self.edges.partition_point(|&e| e <= x)
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        let b = self.bucket_of(x);
        self.counts[b] += 1;
        self.sums[b] += x;
    }

    /// Number of buckets (edges + 1).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Observation count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Sum of observation values in bucket `i`.
    pub fn sum(&self, i: usize) -> f64 {
        self.sums[i]
    }

    /// Total observation count.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total of all observation values.
    pub fn total_sum(&self) -> f64 {
        self.sums.iter().sum()
    }

    /// Fraction of observations in bucket `i` (0 when empty).
    pub fn count_fraction(&self, i: usize) -> f64 {
        let total = self.total_count();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// Fraction of total value mass in bucket `i` (0 when empty).
    pub fn sum_fraction(&self, i: usize) -> f64 {
        let total = self.total_sum();
        if total == 0.0 {
            0.0
        } else {
            self.sums[i] / total
        }
    }
}

/// Exact percentile of a sample (nearest-rank method). Sorts a copy.
///
/// # Panics
/// Panics if `data` is empty or `p` is outside `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        data.iter().for_each(|&x| whole.push(x));

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        data[..37].iter().for_each(|&x| a.push(x));
        data[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn histogram_table1_style_buckets() {
        // Edges at 20 and 200 µs — the paper's Table I buckets.
        let mut h = Histogram::new(vec![20.0, 200.0]);
        h.push(5.0); // <20
        h.push(19.999); // <20
        h.push(20.0); // [20, 200)
        h.push(100.0); // [20, 200)
        h.push(200.0); // >=200
        h.push(5000.0); // >=200
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.total_count(), 6);
        assert!((h.sum(2) - 5200.0).abs() < 1e-12);
        // Time share is dominated by the big bucket even with equal counts.
        assert!(h.sum_fraction(2) > 0.97);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        let _ = Histogram::new(vec![10.0, 10.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let data = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&data, 30.0), 20.0);
        assert_eq!(percentile(&data, 100.0), 50.0);
        assert_eq!(percentile(&data, 0.0), 15.0);
    }
}
